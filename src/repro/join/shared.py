"""Zero-copy sharing of corpus pack arrays across join worker processes.

The multiprocessing paths of :func:`repro.join.batch.batch_distances` ship
the corpus *trees* to each worker once (pickled through the pool init), and
before this module every worker also had to rebuild its own
:class:`~repro.algorithms.batch_kernel.CorpusPack` — an ``O(Σ n)`` packing
pass plus a full duplicate of the struct-of-arrays tables per process.
Here the parent serializes the pack **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` block and workers map
the same physical pages read-only-by-convention, so attaching is ``O(1)``
per worker and the per-tree arrays plus interned label codes exist once in
RAM regardless of worker count.

Lifecycle / ownership
---------------------
* The **parent** calls :func:`export_pack`, keeps the returned
  :class:`SharedPackHandle` alive while the pool runs, and calls
  :meth:`SharedPackHandle.close` (which unlinks) after the pool has been
  torn down.  A module-level ``atexit`` hook plus a polite ``SIGTERM``
  handler (installed only when the process had none) unlink any still-open
  handles on abnormal parent exit, and blocks are *named*
  ``rted_pack_<pid>_<token>`` so :func:`reap_stale` can remove segments
  orphaned by a parent that died uncleanly (``kill -9`` bypasses every
  in-process hook).
* **Workers** call :func:`attach_pack` with the picklable descriptor.  The
  attached pack's arrays are views into the mapped block; the mapping is
  pinned by the pack's ``_shm`` anchor for the pack's lifetime.  Workers
  never unlink.
* Attaching unregisters the segment from the worker-side
  :mod:`multiprocessing.resource_tracker`, otherwise every worker exit
  would try to destroy the parent's segment (the well-known spurious
  "leaked shared_memory" teardown).

Everything degrades gracefully: platforms without ``shared_memory`` (or
sandboxes denying ``/dev/shm``) make :func:`shared_available` return
``False`` and the join falls back to per-worker pack rebuilds, bit-identical
either way.
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal
import weakref
from typing import Any, Dict, List, Optional, Tuple

try:  # Optional accelerator, mirroring repro.algorithms.workspace.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from ..algorithms.batch_kernel import CorpusPack
from . import faults

try:
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover - ancient/embedded platforms
    _shm_mod = None


def shared_available() -> bool:
    """Whether shared-memory pack export can be attempted at all."""
    return _shm_mod is not None and _np is not None


#: Scalar (non-array) pack fields carried inside the descriptor.
_SCALAR_FIELDS = ("n_trees", "small_pair_cutoff", "pad_w")

#: Naming prefix of exported blocks.  Embedding the exporting pid lets
#: :func:`reap_stale` distinguish orphans (owner dead) from live exports.
SHM_PREFIX = "rted_pack_"

#: Where POSIX shared memory surfaces as files (Linux).  ``reap_stale``
#: is a no-op on platforms without it.
_SHM_DIR = "/dev/shm"

# Handles still owning a block, for the crash-exit safety nets below.  A
# WeakSet so the hooks never keep an abandoned handle (or its mapped block)
# alive — `__del__` unlinks a collected one instead.
_LIVE_HANDLES: "weakref.WeakSet[SharedPackHandle]" = weakref.WeakSet()
_HOOKS_INSTALLED = False


def _cleanup_live_handles() -> None:
    """Unlink every still-open exported block (atexit / signal safety net)."""
    for handle in list(_LIVE_HANDLES):
        handle.close()


def _sigterm_cleanup(signum, frame):  # pragma: no cover - signal path
    _cleanup_live_handles()
    # Restore the default disposition and re-deliver, so the process still
    # dies with the conventional termination status.
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_cleanup_hooks() -> None:
    """One-time registration of the abnormal-exit safety nets.

    ``atexit`` covers normal interpreter shutdown and unhandled exceptions;
    a ``SIGTERM`` handler covers polite external kills — installed only
    when the process has no handler of its own (never clobber an embedding
    application's signal handling).  ``SIGKILL`` cannot be hooked; those
    orphans are what :func:`reap_stale` is for.
    """
    global _HOOKS_INSTALLED
    if _HOOKS_INSTALLED:
        return
    _HOOKS_INSTALLED = True
    atexit.register(_cleanup_live_handles)
    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _sigterm_cleanup)
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        pass  # non-main thread or platform without SIGTERM


class SharedPackHandle:
    """Parent-side owner of one exported pack's shared-memory block."""

    __slots__ = ("_shm", "_closed", "__weakref__")

    def __init__(self, shm) -> None:
        self._shm = shm
        self._closed = False
        _install_cleanup_hooks()
        _LIVE_HANDLES.add(self)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Close and unlink the block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        _LIVE_HANDLES.discard(self)
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - teardown race
            pass

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - someone else's process
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return True
    return True


def _owner_pid(block_name: str) -> Optional[int]:
    """The exporting pid embedded in a block name, or ``None`` if foreign."""
    if not block_name.startswith(SHM_PREFIX):
        return None
    rest = block_name[len(SHM_PREFIX):]
    pid_text, _, _token = rest.partition("_")
    try:
        return int(pid_text)
    except ValueError:
        return None


def reap_stale(dry_run: bool = False) -> List[str]:
    """Remove orphaned exported blocks whose owning process is gone.

    Scans ``/dev/shm`` for ``rted_pack_<pid>_*`` entries and unlinks those
    whose pid is dead — the leftovers of a parent killed with ``SIGKILL``
    (no in-process hook can run there).  Blocks of live processes and
    foreign ``psm_*`` segments are never touched.  Returns the names of the
    blocks removed (or, with ``dry_run``, the ones that would be).
    Exposed on the CLI as ``rted shm-reap``.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux or masked /dev/shm
        return []
    reaped: List[str] = []
    for entry in entries:
        pid = _owner_pid(entry)
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            continue
        if not dry_run:
            try:
                os.unlink(os.path.join(_SHM_DIR, entry))
            except OSError:  # pragma: no cover - concurrent reap
                continue
        reaped.append(entry)
    return reaped


def export_pack(pack: CorpusPack, epoch: int = 0):
    """Serialize ``pack`` into one shared-memory block.

    Returns ``(handle, descriptor)`` — the parent keeps ``handle`` alive
    while workers run and closes it afterwards; ``descriptor`` is a small
    picklable dict for :func:`attach_pack`.  Returns ``None`` when shared
    memory is unavailable or the export fails (callers fall back to
    rebuilding packs per worker).

    ``epoch`` stamps the exporting corpus's version into the descriptor
    (``descriptor["epoch"]``).  Exports are per-fan-out — the parent builds
    them from its epoch-keyed pack cache and unlinks them when the fan-out
    ends — so the stamp is provenance for debugging and tests, not a
    liveness check; blocks orphaned by killed parents are reclaimed by
    :func:`reap_stale` regardless of epoch.
    """
    if not shared_available():
        return None
    layout: List[Tuple[str, int, Tuple[int, ...], str]] = []
    offset = 0
    arrays = []
    for field in CorpusPack.ARRAY_FIELDS:
        arr = _np.ascontiguousarray(getattr(pack, field))
        # 8-byte alignment for every field keeps attached views aligned
        # regardless of the dtype mix (bool fields have 1-byte items).
        offset = (offset + 7) & ~7
        layout.append((field, offset, arr.shape, arr.dtype.str))
        arrays.append((offset, arr))
        offset += arr.nbytes
    shm = None
    size = max(1, offset)
    # Named blocks (pid + random token) so orphans are attributable and
    # reap-able; fall back to an anonymous block if naming ever collides
    # or the platform rejects our names.
    for _ in range(3):
        name = f"{SHM_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
        try:
            shm = _shm_mod.SharedMemory(create=True, size=size, name=name)
            break
        except FileExistsError:  # pragma: no cover - 32-bit token collision
            continue
        except (OSError, ValueError):  # pragma: no cover - naming quirk
            break
    if shm is None:
        try:
            shm = _shm_mod.SharedMemory(create=True, size=size)
        except (OSError, ValueError):  # pragma: no cover - /dev/shm unavailable
            return None
    try:
        for off, arr in arrays:
            dst = _np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[...] = arr
    except Exception:  # pragma: no cover - defensive: never leak the block
        shm.close()
        shm.unlink()
        raise
    descriptor: Dict[str, Any] = {
        "shm_name": shm.name,
        "layout": layout,
        "epoch": int(epoch),
    }
    for field in _SCALAR_FIELDS:
        descriptor[field] = int(getattr(pack, field))
    return SharedPackHandle(shm), descriptor


def attach_pack(descriptor: Dict[str, Any]) -> Optional[CorpusPack]:
    """Rebuild a :class:`CorpusPack` over an exported block, zero-copy.

    Every array field is a view into the mapped segment — nothing is
    copied, and the mapping stays alive exactly as long as the returned
    pack (anchored through its ``_shm`` slot).  Returns ``None`` if the
    segment cannot be attached (parent already gone, platform quirk);
    callers then rebuild the pack locally.
    """
    if not shared_available():
        return None
    if faults.shm_attach_fails():
        # Deterministic fault injection: pretend the attach failed so the
        # local-rebuild fallback is exercised (results stay bit-identical).
        return None
    # Attaching must not register the segment with the resource tracker:
    # ownership stays with the exporting parent, and (pre-3.13, where
    # ``track=False`` landed) tracked attachments both spam tracker
    # KeyErrors — forked workers share one tracker, so N attach/unregister
    # cycles double-remove one cache entry — and race to destroy the
    # parent's segment on worker exit.  Suppress registration around the
    # attach instead of unregistering after it.
    try:
        from multiprocessing import resource_tracker

        _register = resource_tracker.register

        def _register_skip_shm(name, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                _register(name, rtype)

        resource_tracker.register = _register_skip_shm
    except Exception:  # pragma: no cover - tracker is platform-dependent
        resource_tracker = None
        _register = None
    try:
        shm = _shm_mod.SharedMemory(name=descriptor["shm_name"])
    except (OSError, FileNotFoundError):  # pragma: no cover - parent raced away
        return None
    finally:
        if _register is not None:
            resource_tracker.register = _register
    fields: Dict[str, Any] = {"_shm": shm}
    for name in _SCALAR_FIELDS:
        fields[name] = descriptor[name]
    for field, offset, shape, dtype in descriptor["layout"]:
        fields[field] = _np.ndarray(
            shape, dtype=_np.dtype(dtype), buffer=shm.buf, offset=offset
        )
    return CorpusPack(**fields)
