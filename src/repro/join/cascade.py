"""The ordered filter cascade of the batch similarity join.

Every stage consumes the per-tree artifacts of a :class:`~repro.join.corpus.
TreeCorpus` and decides one of three things for a candidate pair:

* ``PRUNE``   — a *lower bound* already reaches the threshold, the pair can
  never match;
* ``ACCEPT``  — an *upper bound* is already below the threshold, the pair
  matches without running exact TED;
* ``CONTINUE`` — undecided, hand the pair to the next stage (ultimately the
  exact ``spf``-engine verifier).

Cost-model soundness rule
-------------------------
The lower bounds in :mod:`repro.bounds` count edit *operations* (they are
unit-cost bounds).  Under a cost model whose cheapest operation costs
``c = cost_model.min_operation_cost()`` the sound comparison is

    ``c · ops_bound ≥ τ  ⇒  prune``

equivalently ``ops_bound ≥ τ / c``.  The cascade therefore works in
*operation-count space*: :func:`operations_threshold` converts ``τ`` once,
and models that cannot prove a positive per-operation minimum (``None`` or
``0``) disable every lower-bound stage — pruning with an unscaled unit bound
under e.g. ``WeightedCostModel(0.5, 0.5, 0.5)`` would drop true matches.
Upper-bound stages are exempt from the rule: they evaluate explicit edit
mappings under the *actual* cost model and are valid for any model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bounds.string_edit import levenshtein
from ..bounds.upper_bound import top_down_upper_bound
from ..costs import CostModel
from .corpus import TreeCorpus, TreeProfile

#: Stage decisions.
CONTINUE = "continue"
PRUNE = "prune"
ACCEPT = "accept"


def operations_threshold(threshold: float, cost_model: CostModel) -> float:
    """Convert a distance threshold into operation-count space.

    Returns ``threshold / min_operation_cost`` — the largest number of edit
    operations a matching pair could need — or ``inf`` when the model cannot
    prove a positive per-operation minimum (which soundly disables every
    operation-count lower-bound filter).
    """
    scale = cost_model.min_operation_cost()
    if scale is None or scale <= 0:
        return float("inf")
    return threshold / scale


@dataclass
class CascadeContext:
    """Pair-independent state shared by every stage invocation."""

    threshold: float
    ops_threshold: float
    cost_model: CostModel

    accept_value: Optional[float] = None
    """Distance certified by the accepting stage for the *current* pair.

    Written by accept stages right before returning :data:`ACCEPT` so the
    caller can report the certified distance without recomputing the bound.
    Only meaningful immediately after :func:`run_cascade` returns
    :data:`ACCEPT` (the cascade runs pairs serially in one process).
    """


class FilterStage:
    """A single stage of the filter cascade.

    Subclasses set :attr:`name` (the key under which
    :class:`JoinStats.stage_pruned` reports the stage) and implement
    :meth:`apply` returning :data:`PRUNE`, :data:`ACCEPT` or
    :data:`CONTINUE`.
    """

    name: str = "abstract"

    #: ``True`` for operation-count lower-bound stages, which are skipped
    #: entirely when the cost model admits no sound scaling
    #: (``ctx.ops_threshold == inf``) — they could never prune, only burn time.
    requires_ops_threshold: bool = False

    #: ``True`` for stages that may return :data:`ACCEPT`; the batch join
    #: strips these when ``early_accept=False`` so every match is verified
    #: exactly.
    is_accept_stage: bool = False

    def apply(self, a: TreeProfile, b: TreeProfile, ctx: CascadeContext) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class SizeFilter(FilterStage):
    """Prune on the size-difference lower bound ``| |F| − |G| |`` (O(1))."""

    name = "size"
    requires_ops_threshold = True

    def apply(self, a: TreeProfile, b: TreeProfile, ctx: CascadeContext) -> str:
        if abs(a.size - b.size) >= ctx.ops_threshold:
            return PRUNE
        return CONTINUE


def _multiset_intersection(histogram_a, histogram_b) -> int:
    """Size of the multiset intersection of two ``Counter``-like mappings."""
    if len(histogram_a) > len(histogram_b):
        histogram_a, histogram_b = histogram_b, histogram_a
    intersection = 0
    for key, count in histogram_a.items():
        other = histogram_b.get(key, 0)
        if other:
            intersection += count if count < other else other
    return intersection


class LabelFilter(FilterStage):
    """Prune on the label-multiset lower bound (O(alphabet))."""

    name = "label"
    requires_ops_threshold = True

    def apply(self, a: TreeProfile, b: TreeProfile, ctx: CascadeContext) -> str:
        intersection = _multiset_intersection(a.label_histogram, b.label_histogram)
        if max(a.size, b.size) - intersection >= ctx.ops_threshold:
            return PRUNE
        return CONTINUE


class TraversalStringFilter(FilterStage):
    """Prune on the traversal-string (Levenshtein) lower bound (O(n·m))."""

    name = "traversal-string"
    requires_ops_threshold = True

    def apply(self, a: TreeProfile, b: TreeProfile, ctx: CascadeContext) -> str:
        if levenshtein(a.preorder_labels, b.preorder_labels) >= ctx.ops_threshold:
            return PRUNE
        if levenshtein(a.postorder_labels, b.postorder_labels) >= ctx.ops_threshold:
            return PRUNE
        return CONTINUE


class BinaryBranchFilter(FilterStage):
    """Prune on the binary-branch lower bound ``BBD / 5`` (O(n))."""

    name = "binary-branch"
    requires_ops_threshold = True

    def apply(self, a: TreeProfile, b: TreeProfile, ctx: CascadeContext) -> str:
        intersection = _multiset_intersection(a.branch_profile, b.branch_profile)
        distance = a.size + b.size - 2 * intersection
        if distance / 5.0 >= ctx.ops_threshold:
            return PRUNE
        return CONTINUE


class PQGramFilter(FilterStage):
    """**Approximate** pruning on the normalized pq-gram distance.

    pq-grams do *not* lower-bound the tree edit distance (a single edit at a
    high-fanout node changes unboundedly many grams), so this stage may drop
    true matches.  It is therefore not part of :data:`DEFAULT_CASCADE`; add
    it explicitly — or via ``approximate=True`` on the batch join — for
    approximate joins where recall may be traded for speed.
    """

    name = "pq-gram"

    def __init__(self, corpus_a: TreeCorpus, corpus_b: Optional[TreeCorpus], cutoff: float) -> None:
        self.corpus_a = corpus_a
        self.corpus_b = corpus_b if corpus_b is not None else corpus_a
        self.cutoff = cutoff

    def apply(self, a: TreeProfile, b: TreeProfile, ctx: CascadeContext) -> str:
        profile_a = self.corpus_a.pq_profile(a.index)
        profile_b = self.corpus_b.pq_profile(b.index)
        intersection = sum((profile_a & profile_b).values())
        total = sum(profile_a.values()) + sum(profile_b.values())
        if total == 0:
            return CONTINUE
        if 1.0 - 2.0 * intersection / total >= self.cutoff:
            return PRUNE
        return CONTINUE


class UpperBoundAccept(FilterStage):
    """Accept pairs whose constrained (top-down) upper bound beats τ.

    The bound is the cost of an explicit edit mapping under the *actual* cost
    model, so an accepted pair is a true match for any model; the reported
    distance is that upper bound (≤ τ but possibly above the exact TED).
    Accepting here is what lets many matched pairs skip exact TED entirely.
    """

    name = "upper-bound"
    is_accept_stage = True

    def apply(self, a: TreeProfile, b: TreeProfile, ctx: CascadeContext) -> str:
        upper = top_down_upper_bound(a.tree, b.tree, ctx.cost_model)
        if upper < ctx.threshold:
            ctx.accept_value = upper
            return ACCEPT
        return CONTINUE


def default_cascade() -> List[FilterStage]:
    """The default (sound) stage order: cheapest bounds first, accept last."""
    return [
        SizeFilter(),
        LabelFilter(),
        TraversalStringFilter(),
        BinaryBranchFilter(),
        UpperBoundAccept(),
    ]


@dataclass
class JoinStats:
    """Streaming per-stage measurements of a batch join.

    Updated in place while the join runs (and surfaced through the
    ``progress`` callback of the batch API after every verified chunk), so a
    long-running join can be monitored live.
    """

    pairs_total: int = 0
    candidate_pairs: int = 0
    index_pruned: int = 0
    stage_pruned: Dict[str, int] = field(default_factory=dict)
    accepted_early: int = 0
    exact_computed: int = 0
    exact_matched: int = 0
    aborted_early: int = 0
    """Verifier runs the τ-bounded kernels cut short (``d ≥ τ`` proven
    before the exact distance was finished); a subset of the non-matching
    ``exact_computed`` pairs.  Zero when ``bounded_verify`` is off."""

    verify_workers: int = 1
    """The worker count the verification stage *actually* used: 1 whenever
    the survivor set fit a single chunk (``batch_distances`` runs small
    batches serially regardless of ``workers`` — pool startup would cost
    more than the work), otherwise ``min(workers, number of chunks)``."""

    retried_chunks: int = 0
    """Verification chunks the supervisor re-submitted after a failed
    attempt (worker crash, hang teardown, or in-chunk error)."""

    failed_workers: int = 0
    """Worker-pool failure events the supervisor recovered from during
    verification (crashed pools, hang teardowns, failed pool creation)."""

    degraded_to: Optional[str] = None
    """The deepest degradation-ladder rung verification needed (``"shm"`` →
    ``"local-pack"`` → ``"no-kernel"`` → ``"serial"``), or ``None`` when the
    first rung sufficed.  Results are bit-identical at every rung."""

    poisoned_pairs: int = 0
    """Survivor pairs skipped because they failed on every ladder rung,
    including the per-pair serial re-run (zero outside fault injection or a
    genuinely broken pair)."""

    matches: int = 0
    total_subproblems: int = 0
    profile_time: float = 0.0
    candidate_time: float = 0.0
    cascade_time: float = 0.0
    verify_time: float = 0.0
    total_time: float = 0.0

    @property
    def pairs_pruned(self) -> int:
        """Pairs eliminated by any lower-bound mechanism (index or stages)."""
        return self.index_pruned + sum(self.stage_pruned.values())

    @property
    def filter_rate(self) -> float:
        """Fraction of all pairs that never reached the exact verifier."""
        if self.pairs_total == 0:
            return 0.0
        return 1.0 - self.exact_computed / self.pairs_total

    @property
    def candidate_hit_rate(self) -> float:
        """Fraction of index-generated candidates that ended up matching."""
        if self.candidate_pairs == 0:
            return 0.0
        return self.matches / self.candidate_pairs

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable) for benchmarks and the CLI."""
        return {
            "pairs_total": self.pairs_total,
            "candidate_pairs": self.candidate_pairs,
            "index_pruned": self.index_pruned,
            "stage_pruned": dict(self.stage_pruned),
            "accepted_early": self.accepted_early,
            "exact_computed": self.exact_computed,
            "exact_matched": self.exact_matched,
            "aborted_early": self.aborted_early,
            "verify_workers": self.verify_workers,
            "retried_chunks": self.retried_chunks,
            "failed_workers": self.failed_workers,
            "degraded_to": self.degraded_to,
            "poisoned_pairs": self.poisoned_pairs,
            "matches": self.matches,
            "total_subproblems": self.total_subproblems,
            "filter_rate": self.filter_rate,
            "candidate_hit_rate": self.candidate_hit_rate,
            "profile_time": self.profile_time,
            "candidate_time": self.candidate_time,
            "cascade_time": self.cascade_time,
            "verify_time": self.verify_time,
            "total_time": self.total_time,
        }


def run_cascade(
    stages: Sequence[FilterStage],
    a: TreeProfile,
    b: TreeProfile,
    ctx: CascadeContext,
    stats: JoinStats,
) -> str:
    """Run a pair through the stages, recording prunes/accepts in ``stats``."""
    skip_lower_bounds = ctx.ops_threshold == float("inf")
    for stage in stages:
        if skip_lower_bounds and stage.requires_ops_threshold:
            continue
        decision = stage.apply(a, b, ctx)
        if decision == PRUNE:
            stats.stage_pruned[stage.name] = stats.stage_pruned.get(stage.name, 0) + 1
            return PRUNE
        if decision == ACCEPT:
            stats.accepted_early += 1
            return ACCEPT
    return CONTINUE
