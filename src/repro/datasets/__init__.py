"""Synthetic tree shapes, random trees, and simulated real-world collections."""

from .shapes import (
    SHAPE_GENERATORS,
    SHAPE_NAMES,
    SHAPE_SHORT_NAMES,
    full_binary_tree,
    left_branch_tree,
    make_shape,
    mixed_tree,
    right_branch_tree,
    zigzag_tree,
)
from .random_trees import (
    DEFAULT_ALPHABET,
    perturb_tree,
    random_binary_tree,
    random_forest_of_trees,
    random_tree,
)
from .realworld import (
    generate_collection,
    swissprot_like_tree,
    treebank_like_tree,
    treefam_like_tree,
)
from .workloads import (
    clustered_corpus,
    identical_pair,
    join_workload,
    pairs_at_size_intervals,
    partition_by_size,
    sample_partition,
    shape_size_sweep,
    treefam_partitions,
)

__all__ = [
    "SHAPE_NAMES",
    "SHAPE_GENERATORS",
    "SHAPE_SHORT_NAMES",
    "left_branch_tree",
    "right_branch_tree",
    "full_binary_tree",
    "zigzag_tree",
    "mixed_tree",
    "make_shape",
    "random_tree",
    "random_binary_tree",
    "random_forest_of_trees",
    "perturb_tree",
    "DEFAULT_ALPHABET",
    "swissprot_like_tree",
    "treebank_like_tree",
    "treefam_like_tree",
    "generate_collection",
    "clustered_corpus",
    "identical_pair",
    "shape_size_sweep",
    "pairs_at_size_intervals",
    "join_workload",
    "partition_by_size",
    "sample_partition",
    "treefam_partitions",
]
