"""Random tree generation with bounded depth and fanout.

The paper's "random" synthetic dataset varies depth and fanout with a maximum
depth of 15 and a maximum fanout of 6; :func:`random_tree` reproduces that
model.  Generation is fully deterministic given a seed (or an explicit
``random.Random`` instance), which keeps the experiments and property tests
reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from ..exceptions import TreeConstructionError
from ..trees.node import Node
from ..trees.tree import Tree

#: Default label alphabet (mirrors the small label domains of XML corpora).
DEFAULT_ALPHABET: Sequence[str] = tuple("abcdefghijklmnop")

RngLike = Union[int, random.Random, None]


def _resolve_rng(rng: RngLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def random_tree(
    n: int,
    max_depth: int = 15,
    max_fanout: int = 6,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RngLike = None,
) -> Tree:
    """Generate a random tree with exactly ``n`` nodes.

    Nodes are attached one by one to a uniformly chosen *eligible* node —
    a node whose depth is below ``max_depth`` and whose fanout is below
    ``max_fanout`` — so the resulting shapes vary between bushy and deep
    within the configured limits.  Labels are drawn uniformly from
    ``alphabet``.

    Raises
    ------
    TreeConstructionError
        If ``n`` nodes cannot be placed under the depth/fanout limits.
    """
    if n < 1:
        raise TreeConstructionError(f"tree size must be >= 1, got {n}")
    if max_depth < 0 or max_fanout < 1:
        raise TreeConstructionError("max_depth must be >= 0 and max_fanout >= 1")

    generator = _resolve_rng(rng)
    root = Node(generator.choice(alphabet))
    depths = {id(root): 0}
    eligible: List[Node] = [root] if max_depth > 0 else []
    size = 1

    while size < n:
        if not eligible:
            raise TreeConstructionError(
                f"cannot place {n} nodes with max_depth={max_depth}, max_fanout={max_fanout}"
            )
        index = generator.randrange(len(eligible))
        parent = eligible[index]
        child = Node(generator.choice(alphabet))
        parent.add_child(child)
        depths[id(child)] = depths[id(parent)] + 1
        size += 1

        if len(parent.children) >= max_fanout:
            # Swap-remove keeps the eligible list operations O(1).
            eligible[index] = eligible[-1]
            eligible.pop()
        if depths[id(child)] < max_depth:
            eligible.append(child)

    return Tree(root)


def random_binary_tree(n: int, alphabet: Sequence[str] = DEFAULT_ALPHABET, rng: RngLike = None) -> Tree:
    """Generate a random binary tree (every internal node has exactly 2 children).

    ``n`` must be odd (a binary tree with ``k`` internal nodes has ``2k + 1``
    nodes); an even ``n`` is rounded up.
    """
    generator = _resolve_rng(rng)
    if n % 2 == 0:
        n += 1
    root = Node(generator.choice(alphabet))
    leaves = [root]
    size = 1
    while size + 2 <= n:
        index = generator.randrange(len(leaves))
        leaf = leaves.pop(index)
        left = Node(generator.choice(alphabet))
        right = Node(generator.choice(alphabet))
        leaf.add_child(left)
        leaf.add_child(right)
        leaves.extend([left, right])
        size += 2
    return Tree(root)


def random_forest_of_trees(
    num_trees: int,
    size_range: tuple = (20, 200),
    max_depth: int = 15,
    max_fanout: int = 6,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RngLike = None,
) -> List[Tree]:
    """Generate a collection of random trees with sizes drawn from ``size_range``."""
    generator = _resolve_rng(rng)
    low, high = size_range
    collection = []
    for _ in range(num_trees):
        size = generator.randint(low, high)
        collection.append(
            random_tree(
                size,
                max_depth=max_depth,
                max_fanout=max_fanout,
                alphabet=alphabet,
                rng=generator,
            )
        )
    return collection


def perturb_tree(
    tree: Tree,
    num_edits: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RngLike = None,
) -> Tree:
    """Apply ``num_edits`` random node edits (rename / delete leaf / insert leaf).

    Useful for building workloads of tree pairs with a controlled amount of
    difference, e.g. for the similarity-join experiments: the edit distance of
    the perturbed tree to the original is at most ``num_edits``.
    """
    generator = _resolve_rng(rng)
    root = tree.to_node()

    for _ in range(num_edits):
        nodes = list(root.iter_preorder())
        operation = generator.choice(("rename", "insert", "delete"))
        if operation == "rename":
            target = generator.choice(nodes)
            target.label = generator.choice(alphabet)
        elif operation == "insert":
            parent = generator.choice(nodes)
            position = generator.randint(0, len(parent.children))
            parent.children.insert(position, Node(generator.choice(alphabet)))
        else:
            leaves = [node for node in nodes if node.is_leaf and node is not root]
            if not leaves:
                continue
            target = generator.choice(leaves)
            for node in nodes:
                if target in node.children:
                    node.children.remove(target)
                    break

    return Tree(root)
