"""Simulated real-world tree collections.

The paper evaluates on three real-world datasets that are not redistributable
inside this repository (and would require network access to fetch):

* **SwissProt** — an XML protein-sequence database: 50 000 medium-sized, flat
  trees (maximum depth 4, maximum fanout 346, average size 187);
* **TreeBank** — XML natural-language syntax trees: 56 385 small, deep trees
  (average depth 10.4, maximum depth 35, average size 68);
* **TreeFam** — 16 138 phylogenetic trees of animal genes (average depth 14,
  maximum depth 158, average fanout 2, average size 95).

The generators below synthesize collections that match those published shape
statistics (size, depth, fanout distributions and label domains).  The
experiments that used the real collections (Figure 10, Table 2) run on these
simulated ones; the behaviour under study — how tree *shape* drives the choice
of decomposition strategy and the resulting subproblem counts — depends only
on the shape statistics, which are preserved.  See ``DESIGN.md`` for the full
substitution rationale.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..trees.node import Node
from ..trees.tree import Tree
from .random_trees import RngLike, _resolve_rng

#: Element names modelled on the SwissProt XML schema.
_SWISSPROT_FIELDS: Sequence[str] = (
    "accession", "name", "protein", "gene", "organism", "reference", "comment",
    "dbReference", "keyword", "feature", "evidence", "sequence",
)

#: Part-of-speech / constituent tags modelled on the Penn TreeBank tag set.
_TREEBANK_TAGS: Sequence[str] = (
    "S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP", "DT", "NN", "NNS", "VB",
    "VBD", "VBZ", "IN", "JJ", "RB", "PRP", "CC", "CD", "TO",
)

#: Species codes used for leaf labels of the phylogenies.
_TREEFAM_SPECIES: Sequence[str] = (
    "HUMAN", "MOUSE", "RAT", "CHICK", "XENTR", "DANRE", "DROME", "CAEEL",
    "PANTR", "MACMU", "BOVIN", "CANFA", "FELCA", "TAKRU", "CIOIN", "YEAST",
)


def swissprot_like_tree(rng: RngLike = None, target_size: Optional[int] = None) -> Tree:
    """A flat, wide tree with SwissProt-like statistics (depth ≤ 4, avg size ≈ 187)."""
    generator = _resolve_rng(rng)
    if target_size is None:
        target_size = max(20, int(generator.gauss(187, 60)))

    root = Node("entry")
    size = 1
    # Level 1: a handful of section elements with large, uneven fanout below.
    num_sections = generator.randint(5, 12)
    sections = []
    for _ in range(num_sections):
        section = Node(generator.choice(_SWISSPROT_FIELDS))
        root.add_child(section)
        sections.append(section)
        size += 1
    # Levels 2-3: distribute the remaining budget over the sections, skewed so
    # that a few sections are very wide (mirroring the large maximum fanout).
    while size < target_size:
        section = generator.choice(sections)
        field = Node(generator.choice(_SWISSPROT_FIELDS))
        section.add_child(field)
        size += 1
        # Occasionally add one more level (value nodes), staying within depth 4.
        if size < target_size and generator.random() < 0.35:
            field.add_child(Node(generator.choice(_SWISSPROT_FIELDS)))
            size += 1
    return Tree(root)


def treebank_like_tree(rng: RngLike = None, target_size: Optional[int] = None) -> Tree:
    """A small, deep tree with TreeBank-like statistics (avg depth ≈ 10, avg size ≈ 68)."""
    generator = _resolve_rng(rng)
    if target_size is None:
        target_size = max(10, int(generator.gauss(68, 25)))

    root = Node("S")
    size = 1
    # Grow mostly downwards: each step extends a random deep frontier node
    # with 1-3 children, biased towards extending the deepest chain.
    frontier = [(root, 0)]
    max_depth_limit = 35
    while size < target_size:
        # Bias the choice towards deeper nodes to obtain deep, narrow shapes.
        frontier.sort(key=lambda item: item[1])
        pick_from = frontier[len(frontier) // 2 :] or frontier
        parent, depth = pick_from[generator.randrange(len(pick_from))]
        if depth >= max_depth_limit:
            frontier = [item for item in frontier if item[0] is not parent]
            if not frontier:
                break
            continue
        num_children = generator.choices((1, 2, 3), weights=(0.55, 0.35, 0.10))[0]
        for _ in range(num_children):
            if size >= target_size:
                break
            child = Node(generator.choice(_TREEBANK_TAGS))
            parent.add_child(child)
            frontier.append((child, depth + 1))
            size += 1
        frontier = [item for item in frontier if item[0] is not parent]
        if not frontier:
            frontier = [(root, 0)]
    return Tree(root)


def treefam_like_tree(
    rng: RngLike = None, target_size: Optional[int] = None, imbalance: float = 0.7
) -> Tree:
    """A deep, binary phylogeny with TreeFam-like statistics (avg fanout ≈ 2).

    ``imbalance`` in ``[0, 1]`` controls how caterpillar-like the phylogeny is:
    0 gives balanced random binary trees (depth ≈ log n), larger values bias
    splits towards recently created leaves, producing the long chains (high
    average depth, maximum depth in the hundreds for large trees) reported for
    the real TreeFam data.
    """
    generator = _resolve_rng(rng)
    if target_size is None:
        target_size = max(11, int(generator.gauss(95, 40)))
    if target_size % 2 == 0:
        target_size += 1

    root = Node("family")
    leaves = [root]
    size = 1
    while size + 2 <= target_size:
        if generator.random() < imbalance:
            index = len(leaves) - 1  # split the most recent leaf -> long chain
        else:
            index = generator.randrange(len(leaves))
        leaf = leaves.pop(index)
        leaf.label = "clade"
        left = Node(generator.choice(_TREEFAM_SPECIES))
        right = Node(generator.choice(_TREEFAM_SPECIES))
        leaf.add_child(left)
        leaf.add_child(right)
        leaves.extend([left, right])
        size += 2
    return Tree(root)


def generate_collection(
    kind: str,
    num_trees: int,
    rng: RngLike = None,
    size_range: Optional[tuple] = None,
) -> List[Tree]:
    """Generate a simulated collection of ``num_trees`` trees of the given kind.

    ``kind`` is one of ``"swissprot"``, ``"treebank"``, ``"treefam"``.  When
    ``size_range = (low, high)`` is given, target sizes are drawn uniformly
    from that range instead of the dataset's natural size distribution.
    """
    generator = _resolve_rng(rng)
    builders = {
        "swissprot": swissprot_like_tree,
        "treebank": treebank_like_tree,
        "treefam": treefam_like_tree,
    }
    key = kind.strip().lower()
    if key not in builders:
        raise ValueError(f"unknown collection kind {kind!r}; expected one of {sorted(builders)}")
    builder = builders[key]

    collection: List[Tree] = []
    for _ in range(num_trees):
        if size_range is not None:
            target = generator.randint(size_range[0], size_range[1])
            collection.append(builder(rng=generator, target_size=target))
        else:
            collection.append(builder(rng=generator))
    return collection
