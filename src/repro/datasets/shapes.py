"""Synthetic tree shapes used in the paper's experiments (Figure 7).

The evaluation of the paper uses six synthetic shapes chosen so that each of
the competing strategies is optimal for at least one of them:

* **left branch (LB)** — a spine that descends through leftmost children,
  with a leaf hanging to the right of every spine node (Zhang-L optimal);
* **right branch (RB)** — the mirror image (Zhang-R optimal);
* **full binary (FB)** — a balanced binary tree (Zhang-L and Zhang-R optimal);
* **zig-zag (ZZ)** — a spine that alternates direction at every level
  (Demaine-H optimal);
* **mixed (MX)** — a heterogeneous combination of the above that favours no
  fixed strategy;
* **random** — random trees with bounded depth and fanout (see
  :mod:`repro.datasets.random_trees`).

All generators produce a tree with *exactly* the requested number of nodes and
accept a ``label`` argument (default ``"a"``); with identical labels a pair of
identical trees has distance 0, which is the configuration used for the
subproblem-count experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import TreeConstructionError
from ..trees.node import Node
from ..trees.tree import Tree

#: Canonical shape names, in the order used by Figure 8.
SHAPE_NAMES: List[str] = ["left-branch", "right-branch", "full-binary", "zigzag", "mixed"]


def _require_positive(n: int) -> None:
    if n < 1:
        raise TreeConstructionError(f"tree size must be >= 1, got {n}")


def left_branch_tree(n: int, label: object = "a") -> Tree:
    """Left branch tree (LB): spine of leftmost children, leaves to the right."""
    _require_positive(n)
    current = Node(label)
    size = 1
    while size + 2 <= n:
        current = Node(label, [current, Node(label)])
        size += 2
    if size < n:
        current = Node(label, [current])
    return Tree(current)


def right_branch_tree(n: int, label: object = "a") -> Tree:
    """Right branch tree (RB): spine of rightmost children, leaves to the left."""
    _require_positive(n)
    current = Node(label)
    size = 1
    while size + 2 <= n:
        current = Node(label, [Node(label), current])
        size += 2
    if size < n:
        current = Node(label, [current])
    return Tree(current)


def zigzag_tree(n: int, label: object = "a") -> Tree:
    """Zig-zag tree (ZZ): the spine alternates between left and right at each level."""
    _require_positive(n)
    current = Node(label)
    size = 1
    spine_on_left = True
    while size + 2 <= n:
        if spine_on_left:
            current = Node(label, [current, Node(label)])
        else:
            current = Node(label, [Node(label), current])
        spine_on_left = not spine_on_left
        size += 2
    if size < n:
        current = Node(label, [current])
    return Tree(current)


def full_binary_tree(n: int, label: object = "a") -> Tree:
    """Full binary tree (FB) with exactly ``n`` nodes, as balanced as possible."""
    _require_positive(n)

    def build(count: int) -> Node:
        node = Node(label)
        if count == 1:
            return node
        remaining = count - 1
        left_size = (remaining + 1) // 2
        right_size = remaining - left_size
        if left_size > 0:
            node.add_child(build(left_size))
        if right_size > 0:
            node.add_child(build(right_size))
        return node

    return Tree(build(n))


def mixed_tree(n: int, label: object = "a") -> Tree:
    """Mixed tree (MX): a deterministic blend of the other shapes.

    The root carries four subtrees — a left branch, a zig-zag, a full binary
    tree and a right branch — whose sizes split the remaining node budget.
    The shape deliberately favours no single fixed strategy: an algorithm that
    is efficient on one constituent degenerates on another.
    """
    _require_positive(n)
    if n == 1:
        return Tree(Node(label))
    remaining = n - 1
    quarter = remaining // 4
    section_sizes = [quarter, quarter, quarter, remaining - 3 * quarter]
    builders: List[Callable[[int, object], Tree]] = [
        left_branch_tree,
        zigzag_tree,
        full_binary_tree,
        right_branch_tree,
    ]
    root = Node(label)
    for size, builder in zip(section_sizes, builders):
        if size > 0:
            root.add_child(builder(size, label).to_node())
    return Tree(root)


#: Map of shape name -> generator, used by the experiments and the CLI.
SHAPE_GENERATORS: Dict[str, Callable[..., Tree]] = {
    "left-branch": left_branch_tree,
    "right-branch": right_branch_tree,
    "full-binary": full_binary_tree,
    "zigzag": zigzag_tree,
    "mixed": mixed_tree,
}

#: Short identifiers used in the paper's figures.
SHAPE_SHORT_NAMES: Dict[str, str] = {
    "left-branch": "LB",
    "right-branch": "RB",
    "full-binary": "FB",
    "zigzag": "ZZ",
    "mixed": "MX",
}


def make_shape(name: str, n: int, label: object = "a") -> Tree:
    """Build the named shape with ``n`` nodes.

    Accepts either the long name (``"left-branch"``) or the figure shorthand
    (``"LB"``), case-insensitively.
    """
    key = name.strip().lower()
    for long_name, short_name in SHAPE_SHORT_NAMES.items():
        if key == short_name.lower():
            key = long_name
            break
    generator = SHAPE_GENERATORS.get(key)
    if generator is None:
        raise TreeConstructionError(
            f"unknown shape {name!r}; available: {', '.join(SHAPE_GENERATORS)}"
        )
    return generator(n, label)
