"""Workload builders shared by the experiment harnesses.

These helpers turn the raw generators (shapes, random trees, simulated
real-world collections) into the exact workloads the paper's experiments use:
identical-tree pairs per shape and size (Figure 8/9), pairs picked at regular
size intervals from a collection (Figure 10), heterogeneous join inputs
(Table 1) and size-partitioned collections (Table 2).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..trees.node import Node
from ..trees.tree import Tree
from .random_trees import RngLike, _resolve_rng, perturb_tree, random_tree
from .realworld import generate_collection
from .shapes import make_shape


def identical_pair(shape: str, n: int, rng: RngLike = None) -> Tuple[Tree, Tree]:
    """A pair of identical trees of the given shape and size.

    ``shape`` may be any name accepted by
    :func:`repro.datasets.shapes.make_shape` or ``"random"``.
    """
    if shape.strip().lower() == "random":
        generator = _resolve_rng(rng)
        seed = generator.randrange(2**31)
        return (
            random_tree(n, rng=random.Random(seed)),
            random_tree(n, rng=random.Random(seed)),
        )
    return make_shape(shape, n), make_shape(shape, n)


def shape_size_sweep(
    shapes: Sequence[str], sizes: Sequence[int], rng: RngLike = None
) -> Dict[str, List[Tuple[int, Tree, Tree]]]:
    """For every shape, a list of ``(size, tree, tree)`` identical pairs."""
    generator = _resolve_rng(rng)
    sweep: Dict[str, List[Tuple[int, Tree, Tree]]] = {}
    for shape in shapes:
        entries = []
        for size in sizes:
            tree_a, tree_b = identical_pair(shape, size, rng=generator)
            entries.append((size, tree_a, tree_b))
        sweep[shape] = entries
    return sweep


def pairs_at_size_intervals(
    collection: Sequence[Tree], targets: Sequence[int]
) -> List[Tuple[int, Tree, Tree]]:
    """Pick, for every target size, the two collection trees closest to it.

    This reproduces the sampling procedure of the Figure 10 experiment: "for a
    given tree size n we pick the two trees in the dataset that are closest to
    n; the size value used in the graphs is the average size of the two
    trees."  Returns ``(average_size, tree_a, tree_b)`` triples.
    """
    results = []
    for target in targets:
        ranked = sorted(collection, key=lambda tree: abs(tree.n - target))
        if len(ranked) < 2:
            continue
        tree_a, tree_b = ranked[0], ranked[1]
        results.append(((tree_a.n + tree_b.n) // 2, tree_a, tree_b))
    return results


def join_workload(
    node_count: int = 120, rng: RngLike = None, shapes: Optional[Sequence[str]] = None
) -> List[Tree]:
    """The Table 1 workload: one tree per shape, all of (roughly) equal size.

    The paper uses {LB, RB, FB, ZZ, Random} with about 1000 nodes each;
    the default size here is smaller so the join completes quickly in pure
    Python, and can be raised via ``node_count``.
    """
    generator = _resolve_rng(rng)
    if shapes is None:
        shapes = ["left-branch", "right-branch", "full-binary", "zigzag", "random"]
    trees = []
    for shape in shapes:
        if shape == "random":
            trees.append(random_tree(node_count, rng=generator))
        else:
            trees.append(make_shape(shape, node_count))
    return trees


def _relabel(tree: Tree, alphabet: Sequence[str], rng: RngLike = None) -> Tree:
    """Copy of ``tree`` with every label redrawn from ``alphabet``."""
    generator = _resolve_rng(rng)
    root = tree.to_node()
    stack: List[Node] = [root]
    while stack:
        node = stack.pop()
        node.label = generator.choice(list(alphabet))
        stack.extend(node.children)
    return Tree(root)


def clustered_corpus(
    num_clusters: int = 10,
    cluster_size: int = 10,
    tree_size: int = 12,
    num_edits: int = 2,
    labels_per_cluster: int = 6,
    shapes: Optional[Sequence[str]] = None,
    shared_labels: bool = False,
    rng: RngLike = None,
) -> List[Tree]:
    """A corpus of tree clusters for similarity-join workloads.

    Every cluster consists of one seed tree (its shape cycling through
    ``shapes`` so the corpus mixes shape families, as the Table 1 workload
    does) plus ``cluster_size − 1`` perturbed copies at most ``num_edits``
    edits away, so a selective join threshold matches (mostly) within
    clusters.  By default each cluster draws labels from its own alphabet
    (``"c<cluster>:<i>"``), which keeps cross-cluster pairs far apart and
    exercises index-based candidate generation; ``shared_labels=True`` makes
    all clusters share one alphabet instead, for dense-corpus scenarios.
    """
    generator = _resolve_rng(rng)
    if shapes is None:
        shapes = ["random", "left-branch", "right-branch", "full-binary", "zigzag", "mixed"]
    corpus: List[Tree] = []
    for cluster in range(num_clusters):
        if shared_labels:
            alphabet = [f"l{i}" for i in range(labels_per_cluster)]
        else:
            alphabet = [f"c{cluster}:{i}" for i in range(labels_per_cluster)]
        shape = shapes[cluster % len(shapes)]
        if shape == "random":
            seed = random_tree(tree_size, alphabet=alphabet, rng=generator)
        else:
            seed = _relabel(make_shape(shape, tree_size), alphabet, rng=generator)
        corpus.append(seed)
        for _ in range(cluster_size - 1):
            edits = generator.randint(0, num_edits)
            corpus.append(perturb_tree(seed, edits, alphabet=alphabet, rng=generator))
    return corpus


def partition_by_size(
    collection: Sequence[Tree], boundaries: Sequence[int]
) -> List[List[Tree]]:
    """Partition a collection into size classes.

    ``boundaries = [b1, b2, ..., bk]`` produces ``k + 1`` partitions:
    ``size < b1``, ``b1 <= size < b2``, ..., ``size >= bk`` — the scheme used
    by the Table 2 experiment (boundaries 500 and 1000 in the paper).
    """
    partitions: List[List[Tree]] = [[] for _ in range(len(boundaries) + 1)]
    for tree in collection:
        placed = False
        for index, boundary in enumerate(boundaries):
            if tree.n < boundary:
                partitions[index].append(tree)
                placed = True
                break
        if not placed:
            partitions[-1].append(tree)
    return partitions


def sample_partition(
    partition: Sequence[Tree], sample_size: int, rng: RngLike = None
) -> List[Tree]:
    """Random sample (without replacement) from a partition, as in Table 2."""
    generator = _resolve_rng(rng)
    if len(partition) <= sample_size:
        return list(partition)
    return generator.sample(list(partition), sample_size)


def treefam_partitions(
    num_trees: int = 60,
    boundaries: Sequence[int] = (120, 240),
    size_range: Tuple[int, int] = (40, 400),
    rng: RngLike = None,
) -> List[List[Tree]]:
    """TreeFam-like collection partitioned by size (the Table 2 workload).

    The paper partitions at 500 and 1000 nodes; the default boundaries here
    are scaled down (together with the tree sizes) so the experiment runs in
    seconds, and can be overridden to match the paper exactly.
    """
    collection = generate_collection("treefam", num_trees, rng=rng, size_range=size_range)
    return partition_by_size(collection, boundaries)
