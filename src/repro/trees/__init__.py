"""Tree substrate: nodes, indexed trees, forests, builders, and shape metrics."""

from .node import Node, node_from_nested
from .tree import HEAVY, LEFT, PATH_KINDS, RIGHT, Tree
from .forest import (
    ForestView,
    enumerate_full_decomposition,
    enumerate_path_decomposition,
    enumerate_recursive_path_decomposition,
)
from .builders import (
    path_tree,
    single_node_tree,
    star_tree,
    tree_from_edges,
    tree_from_nested,
    tree_from_parent_array,
)
from .metrics import (
    CollectionStats,
    TreeShapeStats,
    collection_stats,
    label_histogram,
    shape_signature,
    tree_stats,
)
from . import traversal

__all__ = [
    "Node",
    "node_from_nested",
    "Tree",
    "ForestView",
    "LEFT",
    "RIGHT",
    "HEAVY",
    "PATH_KINDS",
    "enumerate_full_decomposition",
    "enumerate_path_decomposition",
    "enumerate_recursive_path_decomposition",
    "tree_from_nested",
    "tree_from_parent_array",
    "tree_from_edges",
    "single_node_tree",
    "path_tree",
    "star_tree",
    "TreeShapeStats",
    "CollectionStats",
    "tree_stats",
    "collection_stats",
    "label_histogram",
    "shape_signature",
    "traversal",
]
