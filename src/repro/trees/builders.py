"""Convenience constructors for trees.

These helpers build :class:`~repro.trees.tree.Tree` objects from common
Python-native descriptions: nested tuples, parent arrays, and edge lists.
Parsers for textual formats (bracket notation, Newick, XML) live in
:mod:`repro.io`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import TreeConstructionError
from .node import Node, node_from_nested
from .tree import Tree


def tree_from_nested(spec: object) -> Tree:
    """Build a tree from a nested ``(label, [children])`` specification.

    Examples
    --------
    >>> t = tree_from_nested(("a", ["b", ("c", ["d"])]))
    >>> t.n
    4
    """
    return Tree(node_from_nested(spec))


def tree_from_parent_array(
    labels: Sequence[object], parents: Sequence[int]
) -> Tree:
    """Build a tree from parallel ``labels`` / ``parents`` arrays.

    ``parents[i]`` is the index (into the same arrays) of node ``i``'s parent,
    or ``-1`` for the root.  Children keep the relative order of their indices.

    Raises
    ------
    TreeConstructionError
        If the arrays have different lengths, there is not exactly one root,
        or the parent pointers contain a cycle.
    """
    if len(labels) != len(parents):
        raise TreeConstructionError(
            f"labels ({len(labels)}) and parents ({len(parents)}) must have the same length"
        )
    n = len(labels)
    if n == 0:
        raise TreeConstructionError("cannot build an empty tree")

    roots = [i for i, p in enumerate(parents) if p == -1]
    if len(roots) != 1:
        raise TreeConstructionError(f"expected exactly one root, found {len(roots)}")

    children: List[List[int]] = [[] for _ in range(n)]
    for i, p in enumerate(parents):
        if p == -1:
            continue
        if not 0 <= p < n:
            raise TreeConstructionError(f"parent index {p} of node {i} out of range")
        children[p].append(i)

    nodes = [Node(label) for label in labels]
    # Detect cycles: a valid parent array reaches the root from every node.
    for i in range(n):
        seen = set()
        j = i
        while j != -1:
            if j in seen:
                raise TreeConstructionError("parent array contains a cycle")
            seen.add(j)
            j = parents[j]

    for i in range(n):
        nodes[i].children = [nodes[c] for c in children[i]]
    return Tree(nodes[roots[0]])


def tree_from_edges(
    edges: Iterable[Tuple[object, object]],
    labels: Optional[Dict[object, object]] = None,
    root: Optional[object] = None,
) -> Tree:
    """Build a tree from ``(parent, child)`` edges.

    Children keep the order in which their edges appear.  Node identities may
    be any hashable values; ``labels`` optionally maps identities to labels
    (defaulting to the identity itself).  When ``root`` is omitted it is
    inferred as the unique node that never appears as a child.
    """
    edge_list = list(edges)
    children: Dict[object, List[object]] = {}
    all_nodes: Dict[object, None] = {}
    child_nodes = set()
    for parent, child in edge_list:
        children.setdefault(parent, []).append(child)
        all_nodes.setdefault(parent)
        all_nodes.setdefault(child)
        child_nodes.add(child)

    if not all_nodes:
        raise TreeConstructionError("cannot build a tree from an empty edge list")

    if root is None:
        candidates = [v for v in all_nodes if v not in child_nodes]
        if len(candidates) != 1:
            raise TreeConstructionError(
                f"expected exactly one root candidate, found {len(candidates)}"
            )
        root = candidates[0]
    elif root not in all_nodes:
        raise TreeConstructionError(f"declared root {root!r} does not appear in the edges")

    def label_of(identity: object) -> object:
        if labels is None:
            return identity
        return labels.get(identity, identity)

    def build(identity: object, visited: set) -> Node:
        if identity in visited:
            raise TreeConstructionError("edge list contains a cycle")
        visited.add(identity)
        node = Node(label_of(identity))
        for child in children.get(identity, []):
            node.add_child(build(child, visited))
        visited.remove(identity)
        return node

    tree = Tree(build(root, set()))
    if tree.n != len(all_nodes):
        raise TreeConstructionError(
            "edge list is not connected: "
            f"{len(all_nodes) - tree.n} node(s) unreachable from the root"
        )
    return tree


def single_node_tree(label: object = "a") -> Tree:
    """A tree consisting of a single labeled node."""
    return Tree(Node(label))


def path_tree(labels: Sequence[object]) -> Tree:
    """A degenerate path (each node has exactly one child), top to bottom."""
    if not labels:
        raise TreeConstructionError("path_tree requires at least one label")
    root = Node(labels[0])
    current = root
    for label in labels[1:]:
        current = current.add_child(Node(label))
    return Tree(root)


def star_tree(root_label: object, leaf_labels: Sequence[object]) -> Tree:
    """A root with ``len(leaf_labels)`` leaf children."""
    return Tree(Node(root_label, [Node(label) for label in leaf_labels]))
