"""Mutable tree nodes used to construct trees.

A :class:`Node` is a lightweight recursive structure (label + ordered list of
children) meant for *building* trees programmatically or from parsers.  Once a
tree is complete it is converted into an indexed, immutable
:class:`repro.trees.tree.Tree`, which is what every algorithm in the library
operates on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional


class Node:
    """An ordered labeled tree node.

    Parameters
    ----------
    label:
        The node label.  Labels may be any hashable value; most of the
        library uses strings.
    children:
        Optional iterable of child nodes, kept in left-to-right order.

    Examples
    --------
    >>> t = Node("a", [Node("b"), Node("c", [Node("d")])])
    >>> t.label
    'a'
    >>> [c.label for c in t.children]
    ['b', 'c']
    >>> t.size()
    4
    """

    __slots__ = ("label", "children")

    def __init__(self, label: object, children: Optional[Iterable["Node"]] = None) -> None:
        self.label = label
        self.children: List[Node] = list(children) if children is not None else []

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add_child(self, child: "Node") -> "Node":
        """Append ``child`` as the rightmost child and return it."""
        self.children.append(child)
        return child

    def add_children(self, children: Iterable["Node"]) -> "Node":
        """Append several children (left to right) and return ``self``."""
        for child in children:
            self.children.append(child)
        return self

    def copy(self) -> "Node":
        """Return a deep copy of the subtree rooted at this node."""
        return Node(self.label, [child.copy() for child in self.children])

    def mirrored(self) -> "Node":
        """Return a deep copy with the order of children reversed everywhere."""
        return Node(self.label, [child.mirrored() for child in reversed(self.children)])

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def is_leaf(self) -> bool:
        """``True`` when the node has no children."""
        return not self.children

    def size(self) -> int:
        """Number of nodes in the subtree rooted at this node."""
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children)
        return total

    def depth(self) -> int:
        """Height of the subtree rooted at this node (a single node has depth 0)."""
        best = 0
        stack = [(self, 0)]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            for child in node.children:
                stack.append((child, level + 1))
        return best

    def iter_preorder(self) -> Iterator["Node"]:
        """Yield nodes of the subtree in preorder (parent before children)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # Push children right-to-left so the leftmost child is visited first.
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["Node"]:
        """Yield nodes of the subtree in postorder (children before parent)."""
        # Iterative postorder to avoid recursion limits on deep trees.
        stack: List[tuple["Node", int]] = [(self, 0)]
        while stack:
            node, child_index = stack.pop()
            if child_index < len(node.children):
                stack.append((node, child_index + 1))
                stack.append((node.children[child_index], 0))
            else:
                yield node

    def labels_preorder(self) -> List[object]:
        """Labels of the subtree in preorder."""
        return [node.label for node in self.iter_preorder()]

    def labels_postorder(self) -> List[object]:
        """Labels of the subtree in postorder."""
        return [node.label for node in self.iter_postorder()]

    # ------------------------------------------------------------------ #
    # Structural equality (label + shape), useful in tests.
    # ------------------------------------------------------------------ #
    def structurally_equal(self, other: "Node") -> bool:
        """``True`` iff both subtrees have identical shape and labels."""
        if not isinstance(other, Node):
            return False
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a.label != b.label or len(a.children) != len(b.children):
                return False
            stack.extend(zip(a.children, b.children))
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.label!r}, {len(self.children)} children)"


def node_from_nested(spec: object) -> Node:
    """Build a :class:`Node` from a nested ``(label, [children])`` structure.

    The ``spec`` may be:

    * a bare label (creates a leaf), or
    * a 2-tuple/list ``(label, children)`` where ``children`` is an iterable of
      nested specs.

    Examples
    --------
    >>> node_from_nested(("a", ["b", ("c", ["d"])])).labels_preorder()
    ['a', 'b', 'c', 'd']
    """
    if isinstance(spec, (tuple, list)) and len(spec) == 2 and isinstance(spec[1], (tuple, list)):
        label, children = spec
        return Node(label, [node_from_nested(child) for child in children])
    return Node(spec)
