"""Light-weight subforest views used by the decomposition engine.

A *relevant subforest* of a tree (in the sense of the RTED paper) is obtained
by repeatedly removing the leftmost or rightmost root node.  After the first
removal every connected component of such a forest is a complete subtree of
the original tree, so a subforest is fully described by the ordered tuple of
its component roots.  :class:`ForestView` wraps that tuple together with the
owning :class:`~repro.trees.tree.Tree` and provides the removal operations the
recursive tree edit distance formula needs.

The representation is deliberately simple: it favours clarity and testability
over raw speed, which is what the generic decomposition engine
(:mod:`repro.algorithms.forest_engine`) needs.  The production Zhang–Shasha
implementation does not use it.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from .tree import Tree


class ForestView:
    """An ordered forest of complete subtrees of a host tree.

    Parameters
    ----------
    tree:
        The host :class:`Tree`.
    roots:
        Tuple of postorder ids of the component roots, in left-to-right order.
    """

    __slots__ = ("tree", "roots")

    def __init__(self, tree: Tree, roots: Tuple[int, ...]) -> None:
        self.tree = tree
        self.roots = roots

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def whole_tree(cls, tree: Tree) -> "ForestView":
        """The forest consisting of the complete tree."""
        return cls(tree, (tree.root,))

    @classmethod
    def subtree(cls, tree: Tree, v: int) -> "ForestView":
        """The forest consisting of the single subtree rooted at ``v``."""
        return cls(tree, (v,))

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """``True`` when the forest has no nodes."""
        return not self.roots

    @property
    def is_tree(self) -> bool:
        """``True`` when the forest consists of exactly one component."""
        return len(self.roots) == 1

    def size(self) -> int:
        """Total number of nodes in the forest."""
        sizes = self.tree.sizes
        return sum(sizes[r] for r in self.roots)

    @property
    def leftmost_root(self) -> int:
        """Postorder id of the leftmost component root (``rL`` in the paper)."""
        return self.roots[0]

    @property
    def rightmost_root(self) -> int:
        """Postorder id of the rightmost component root (``rR`` in the paper)."""
        return self.roots[-1]

    def iter_nodes(self) -> Iterator[int]:
        """Yield all node ids in the forest (ascending postorder per component)."""
        for r in self.roots:
            yield from self.tree.subtree_nodes(r)

    # ------------------------------------------------------------------ #
    # Removal operations of the recursive formula
    # ------------------------------------------------------------------ #
    def remove_leftmost_root(self) -> "ForestView":
        """``F − rL(F)``: delete the leftmost root, exposing its children."""
        v = self.roots[0]
        children = tuple(self.tree.children[v])
        return ForestView(self.tree, children + self.roots[1:])

    def remove_rightmost_root(self) -> "ForestView":
        """``F − rR(F)``: delete the rightmost root, exposing its children."""
        v = self.roots[-1]
        children = tuple(self.tree.children[v])
        return ForestView(self.tree, self.roots[:-1] + children)

    def leftmost_subtree(self) -> "ForestView":
        """``F_{rL(F)}``: the complete subtree rooted at the leftmost root."""
        return ForestView(self.tree, (self.roots[0],))

    def rightmost_subtree(self) -> "ForestView":
        """``F_{rR(F)}``: the complete subtree rooted at the rightmost root."""
        return ForestView(self.tree, (self.roots[-1],))

    def without_leftmost_subtree(self) -> "ForestView":
        """``F − F_{rL(F)}``: drop the whole leftmost component."""
        return ForestView(self.tree, self.roots[1:])

    def without_rightmost_subtree(self) -> "ForestView":
        """``F − F_{rR(F)}``: drop the whole rightmost component."""
        return ForestView(self.tree, self.roots[:-1])

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def key(self) -> Tuple[int, ...]:
        """Hashable identity of the forest within its host tree."""
        return self.roots

    def labels(self) -> List[object]:
        """Labels of all nodes in the forest (per-component postorder)."""
        return [self.tree.labels[v] for v in self.iter_nodes()]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ForestView)
            and self.tree is other.tree
            and self.roots == other.roots
        )

    def __hash__(self) -> int:
        return hash((id(self.tree), self.roots))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ForestView(roots={self.roots})"


def enumerate_full_decomposition(tree: Tree, v: int | None = None) -> set:
    """Enumerate the full decomposition ``A(F_v)`` as a set of forest keys.

    This is the *definitional* (exponential-looking, but memoized) computation
    of Definition 1, used in tests to validate the closed-form of Lemma 1.
    """
    if v is None:
        v = tree.root
    seen: set = set()

    def visit(forest: ForestView) -> None:
        if forest.is_empty or forest.key() in seen:
            return
        seen.add(forest.key())
        visit(forest.remove_leftmost_root())
        visit(forest.remove_rightmost_root())

    visit(ForestView.subtree(tree, v))
    return seen


def enumerate_path_decomposition(tree: Tree, v: int, kind: str) -> List[Tuple[int, ...]]:
    """Enumerate the relevant subforests ``F(F_v, γ_kind(F_v))`` (Definition 3).

    Returns forest keys in the order the decomposition produces them; the
    cardinality must equal ``|F_v|`` by Lemma 2.
    """
    path = tree.path_set(v, kind)
    result: List[Tuple[int, ...]] = []
    forest = ForestView.subtree(tree, v)
    while not forest.is_empty:
        result.append(forest.key())
        if forest.leftmost_root in path:
            forest = forest.remove_rightmost_root()
        else:
            forest = forest.remove_leftmost_root()
    return result


def enumerate_recursive_path_decomposition(tree: Tree, v: int, kind: str) -> List[Tuple[int, ...]]:
    """Enumerate ``F(F_v, Γ_kind)`` — the recursive path decomposition (Eq. 1).

    The subforests of ``F_v`` w.r.t. its ``kind`` path, plus recursively the
    subforests of every relevant subtree.  The cardinality must match
    :meth:`Tree.left_decomposition_sizes` / ``right_decomposition_sizes``
    (Lemma 3).
    """
    result: List[Tuple[int, ...]] = []
    pending = [v]
    while pending:
        u = pending.pop()
        result.extend(enumerate_path_decomposition(tree, u, kind))
        pending.extend(tree.relevant_subtrees(u, kind))
    return result
