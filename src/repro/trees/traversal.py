"""Traversal helpers shared by serializers, bounds, and experiments.

The :class:`~repro.trees.tree.Tree` class exposes the basic pre/postorder
iterators; this module adds the derived traversals used elsewhere in the
library (breadth-first order, leaves, ancestor chains, Euler tours, and
per-level grouping).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Tuple

from .tree import Tree


def bfs_order(tree: Tree) -> List[int]:
    """Node ids in breadth-first (level) order starting at the root."""
    order: List[int] = []
    queue = deque([tree.root])
    while queue:
        v = queue.popleft()
        order.append(v)
        queue.extend(tree.children[v])
    return order


def leaves(tree: Tree) -> List[int]:
    """Postorder ids of all leaves, in ascending (left-to-right) order."""
    return [v for v in range(tree.n) if not tree.children[v]]


def ancestors(tree: Tree, v: int) -> List[int]:
    """Ancestors of ``v`` from its parent up to the root (exclusive of ``v``)."""
    chain: List[int] = []
    current = tree.parents[v]
    while current != -1:
        chain.append(current)
        current = tree.parents[current]
    return chain


def root_path_labels(tree: Tree, v: int) -> List[object]:
    """Labels from the root down to ``v`` (inclusive)."""
    chain = [v] + ancestors(tree, v)
    chain.reverse()
    return [tree.labels[u] for u in chain]


def levels(tree: Tree) -> List[List[int]]:
    """Group node ids by depth; ``levels(t)[d]`` lists all nodes at depth ``d``."""
    grouped: List[List[int]] = [[] for _ in range(tree.depth() + 1)]
    for v in range(tree.n):
        grouped[tree.depths[v]].append(v)
    return grouped


def euler_tour(tree: Tree) -> List[Tuple[str, int]]:
    """Euler tour as a list of ``("enter" | "leave", node_id)`` events.

    The tour visits every node twice; it is the traversal underlying the
    bracket serialization and several tree encodings.
    """
    events: List[Tuple[str, int]] = []

    def visit(v: int) -> None:
        stack: List[Tuple[int, int]] = [(v, 0)]
        while stack:
            node, child_pos = stack.pop()
            if child_pos == 0:
                events.append(("enter", node))
            if child_pos < len(tree.children[node]):
                stack.append((node, child_pos + 1))
                stack.append((tree.children[node][child_pos], 0))
            else:
                events.append(("leave", node))

    visit(tree.root)
    return events


def iter_subtree_pairs(tree_f: Tree, tree_g: Tree) -> Iterator[Tuple[int, int]]:
    """All pairs of node ids ``(v, w)``, both in ascending postorder.

    This is the iteration order of Algorithm 2 (OptStrategy): children before
    parents in both trees.
    """
    for v in range(tree_f.n):
        for w in range(tree_g.n):
            yield v, w


def lowest_common_ancestor(tree: Tree, u: int, v: int) -> int:
    """Lowest common ancestor of ``u`` and ``v`` (simple linear-walk version)."""
    ancestors_u = set([u]) | set(ancestors(tree, u))
    current = v
    while current not in ancestors_u:
        current = tree.parents[current]
    return current
