"""Shape statistics for trees and tree collections.

These summaries mirror the dataset characteristics the RTED paper reports
(average size, depth, fanout) and are used both by the dataset simulators and
by the experiment harnesses when describing workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from .tree import Tree


@dataclass(frozen=True)
class TreeShapeStats:
    """Shape statistics of a single tree."""

    size: int
    depth: int
    max_fanout: int
    avg_fanout: float
    num_leaves: int
    left_heaviness: float
    """Fraction of internal nodes whose heavy child is the leftmost child."""

    right_heaviness: float
    """Fraction of internal nodes whose heavy child is the rightmost child."""


@dataclass(frozen=True)
class CollectionStats:
    """Aggregate shape statistics of a collection of trees."""

    num_trees: int
    avg_size: float
    max_size: int
    avg_depth: float
    max_depth: int
    avg_fanout: float
    max_fanout: int


def tree_stats(tree: Tree) -> TreeShapeStats:
    """Compute :class:`TreeShapeStats` for ``tree``."""
    internal = [v for v in range(tree.n) if tree.children[v]]
    num_children = sum(len(tree.children[v]) for v in internal)
    left_heavy = sum(1 for v in internal if tree.heavy_child[v] == tree.children[v][0])
    right_heavy = sum(1 for v in internal if tree.heavy_child[v] == tree.children[v][-1])
    denominator = max(len(internal), 1)
    return TreeShapeStats(
        size=tree.n,
        depth=tree.depth(),
        max_fanout=tree.max_fanout(),
        avg_fanout=num_children / denominator,
        num_leaves=tree.num_leaves(),
        left_heaviness=left_heavy / denominator,
        right_heaviness=right_heavy / denominator,
    )


def collection_stats(trees: Iterable[Tree]) -> CollectionStats:
    """Compute :class:`CollectionStats` for a collection of trees."""
    sizes: List[int] = []
    depths: List[int] = []
    fanouts: List[int] = []
    for tree in trees:
        sizes.append(tree.n)
        depths.append(tree.depth())
        fanouts.append(tree.max_fanout())
    if not sizes:
        return CollectionStats(0, 0.0, 0, 0.0, 0, 0.0, 0)
    return CollectionStats(
        num_trees=len(sizes),
        avg_size=sum(sizes) / len(sizes),
        max_size=max(sizes),
        avg_depth=sum(depths) / len(depths),
        max_depth=max(depths),
        avg_fanout=sum(fanouts) / len(fanouts),
        max_fanout=max(fanouts),
    )


def average_depth_per_node(tree: Tree) -> float:
    """Mean node depth, a finer-grained "deepness" measure than the height."""
    return sum(tree.depths) / tree.n


def label_histogram(tree: Tree) -> dict:
    """Multiset of labels as a ``label -> count`` dictionary."""
    histogram: dict = {}
    for label in tree.labels:
        histogram[label] = histogram.get(label, 0) + 1
    return histogram


def shape_signature(tree: Tree) -> Sequence[int]:
    """A label-agnostic signature of the tree shape.

    Two trees have the same signature iff they are structurally identical
    ignoring labels (children counts in postorder fully determine the shape).
    """
    return tuple(len(tree.children[v]) for v in range(tree.n))
