"""Indexed, immutable ordered labeled trees.

:class:`Tree` is the workhorse data structure of the library.  It converts a
recursive :class:`repro.trees.node.Node` structure into flat arrays indexed by
*postorder position* (0-based), which is the node identifier used throughout
the algorithms:

* ``labels[i]`` — label of node ``i``;
* ``parents[i]`` — postorder id of the parent (``-1`` for the root);
* ``children[i]`` — postorder ids of the children, left to right;
* ``sizes[i]`` — number of nodes in the subtree rooted at ``i``;
* ``depths[i]`` — distance from the root;
* ``lml[i]`` / ``rml[i]`` — leftmost / rightmost leaf descendant of ``i``;
* ``pre_of_post[i]`` — preorder position of the node with postorder id ``i``.

On top of the raw arrays the class precomputes everything the RTED machinery
needs: heavy children, membership of a node in its parent's left/right/heavy
path, Zhang–Shasha keyroots, and the decomposition cardinalities of
Lemmas 1–3 of the paper (``|A(F_v)|``, ``|F(F_v, Γ_L)|``, ``|F(F_v, Γ_R)|``).
The iterative single-path functions (:mod:`repro.algorithms.spf`) additionally
use the reverse-postorder ids (:meth:`Tree.rpost_of_post`), per-subtree
keyroot slices (:meth:`Tree.subtree_keyroots`) and subtree-local offsets
(:meth:`Tree.subtree_offset`); see ``DESIGN.md`` for how they fit together.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Sequence, Tuple

from ..exceptions import InvalidNodeError, TreeConstructionError
from .node import Node

#: Path-kind constants.  ``LEFT``/``RIGHT``/``HEAVY`` identify root-leaf paths
#: that always descend to the leftmost child, the rightmost child, or the
#: child rooting the largest subtree, respectively.
LEFT = "left"
RIGHT = "right"
HEAVY = "heavy"

PATH_KINDS = (LEFT, RIGHT, HEAVY)


class Tree:
    """An immutable ordered labeled tree with postorder-indexed node arrays.

    Parameters
    ----------
    root:
        Root :class:`~repro.trees.node.Node` of the tree to index.  The node
        structure is not modified and not referenced after construction.

    Examples
    --------
    >>> from repro.trees import Node, Tree
    >>> t = Tree(Node("a", [Node("b"), Node("c", [Node("d")])]))
    >>> t.n
    4
    >>> t.label(t.root)
    'a'
    >>> t.sizes[t.root]
    4
    """

    __slots__ = (
        "labels",
        "parents",
        "children",
        "sizes",
        "depths",
        "lml",
        "rml",
        "pre_of_post",
        "post_of_pre",
        "child_index",
        "heavy_child",
        "_full_decomp",
        "_left_decomp",
        "_right_decomp",
        "_keyroots_left",
        "_keyroots_right",
        "_leaf_counts",
        "_rpost_of_post",
        "_post_of_rpost",
        "_on_path_all",
    )

    def __init__(self, root: Node) -> None:
        if not isinstance(root, Node):
            raise TreeConstructionError(
                f"Tree must be constructed from a Node, got {type(root).__name__}"
            )
        self._index(root)
        self._compute_heavy_children()
        self._full_decomp: Optional[List[int]] = None
        self._left_decomp: Optional[List[int]] = None
        self._right_decomp: Optional[List[int]] = None
        self._keyroots_left: Optional[List[int]] = None
        self._keyroots_right: Optional[List[int]] = None
        self._leaf_counts: Optional[List[int]] = None
        self._rpost_of_post: Optional[List[int]] = None
        self._post_of_rpost: Optional[List[int]] = None
        self._on_path_all: dict = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _index(self, root: Node) -> None:
        """Assign postorder ids and populate the flat arrays."""
        labels: List[object] = []
        parents: List[int] = []
        children: List[List[int]] = []
        sizes: List[int] = []
        depths: List[int] = []
        lml: List[int] = []
        rml: List[int] = []
        pre_of_post: List[int] = []
        child_index: List[int] = []

        # Iterative postorder traversal carrying (node, parent_marker, depth).
        # ``pending`` mirrors the recursion stack; each frame tracks which
        # children have already been emitted so we can assign ids bottom-up.
        preorder_counter = 0
        stack: List[Tuple[Node, int, int, List[int], int]] = []
        # frame: (node, depth, preorder_id, collected_child_ids, next_child_pos)
        stack.append((root, 0, preorder_counter, [], 0))
        preorder_counter += 1

        while stack:
            node, depth, pre_id, child_ids, next_child = stack.pop()
            if next_child < len(node.children):
                stack.append((node, depth, pre_id, child_ids, next_child + 1))
                child = node.children[next_child]
                stack.append((child, depth + 1, preorder_counter, [], 0))
                preorder_counter += 1
                continue

            # All children processed: emit this node.
            my_id = len(labels)
            labels.append(node.label)
            parents.append(-1)
            children.append(child_ids)
            depths.append(depth)
            pre_of_post.append(pre_id)
            child_index.append(0)
            if child_ids:
                size = 1 + sum(sizes[c] for c in child_ids)
                sizes.append(size)
                lml.append(lml[child_ids[0]])
                rml.append(rml[child_ids[-1]])
                for pos, c in enumerate(child_ids):
                    parents[c] = my_id
                    child_index[c] = pos
            else:
                sizes.append(1)
                lml.append(my_id)
                rml.append(my_id)

            if stack:
                # Attach to the parent frame that is collecting child ids.
                stack[-1][3].append(my_id)

        self.labels: Sequence[object] = labels
        self.parents: Sequence[int] = parents
        self.children: Sequence[List[int]] = children
        self.sizes: Sequence[int] = sizes
        self.depths: Sequence[int] = depths
        self.lml: Sequence[int] = lml
        self.rml: Sequence[int] = rml
        self.pre_of_post: Sequence[int] = pre_of_post
        self.child_index: Sequence[int] = child_index

        post_of_pre = [0] * len(labels)
        for post_id, pre_id in enumerate(pre_of_post):
            post_of_pre[pre_id] = post_id
        self.post_of_pre: Sequence[int] = post_of_pre

    def _compute_heavy_children(self) -> None:
        """For each node, record the child rooting the largest subtree.

        Ties are broken towards the leftmost child, which matches the
        convention of the reference RTED implementation.
        """
        heavy = [-1] * self.n
        for v in range(self.n):
            best = -1
            best_size = 0
            for c in self.children[v]:
                if self.sizes[c] > best_size:
                    best_size = self.sizes[c]
                    best = c
            heavy[v] = best
        self.heavy_child: Sequence[int] = heavy

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes in the tree."""
        return len(self.labels)

    def __len__(self) -> int:
        return self.n

    @property
    def root(self) -> int:
        """Postorder id of the root node (always ``n - 1``)."""
        return self.n - 1

    def label(self, v: int) -> object:
        """Label of node ``v``."""
        self._check(v)
        return self.labels[v]

    def parent(self, v: int) -> int:
        """Postorder id of the parent of ``v`` (``-1`` for the root)."""
        self._check(v)
        return self.parents[v]

    def is_leaf(self, v: int) -> bool:
        """``True`` when ``v`` has no children."""
        self._check(v)
        return not self.children[v]

    def is_root(self, v: int) -> bool:
        """``True`` when ``v`` is the root."""
        self._check(v)
        return self.parents[v] == -1

    def num_leaves(self, v: Optional[int] = None) -> int:
        """Number of leaves in the subtree rooted at ``v`` (default: whole tree)."""
        if self._leaf_counts is None:
            counts = [0] * self.n
            for u in range(self.n):
                if not self.children[u]:
                    counts[u] = 1
                else:
                    counts[u] = sum(counts[c] for c in self.children[u])
            self._leaf_counts = counts
        if v is None:
            v = self.root
        self._check(v)
        return self._leaf_counts[v]

    def depth(self) -> int:
        """Height of the tree (a single-node tree has depth 0)."""
        return max(self.depths)

    def max_fanout(self) -> int:
        """Maximum number of children over all nodes."""
        return max((len(c) for c in self.children), default=0)

    def _check(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise InvalidNodeError(f"node id {v} out of range [0, {self.n})")

    # ------------------------------------------------------------------ #
    # Traversals
    # ------------------------------------------------------------------ #
    def iter_postorder(self, v: Optional[int] = None) -> Iterator[int]:
        """Yield postorder ids of the subtree rooted at ``v`` in postorder.

        For the default ``v=None`` (whole tree) this is simply
        ``range(self.n)``; for a subtree it is the contiguous-in-structure set
        of descendants, still in ascending postorder.
        """
        if v is None:
            yield from range(self.n)
            return
        self._check(v)
        yield from self.subtree_nodes(v)

    def iter_preorder(self, v: Optional[int] = None) -> Iterator[int]:
        """Yield postorder ids of the subtree rooted at ``v`` in preorder."""
        if v is None:
            v = self.root
        self._check(v)
        stack = [v]
        while stack:
            u = stack.pop()
            yield u
            stack.extend(reversed(self.children[u]))

    def subtree_nodes(self, v: int) -> List[int]:
        """Postorder ids of all nodes in the subtree rooted at ``v``, ascending.

        Because descendants of ``v`` receive postorder ids in
        ``[v - sizes[v] + 1, v]``, this is a contiguous range.
        """
        self._check(v)
        return list(range(v - self.sizes[v] + 1, v + 1))

    def is_descendant(self, u: int, v: int) -> bool:
        """``True`` iff ``u`` is ``v`` or a descendant of ``v``."""
        self._check(u)
        self._check(v)
        return v - self.sizes[v] + 1 <= u <= v

    # ------------------------------------------------------------------ #
    # Paths (left / right / heavy)
    # ------------------------------------------------------------------ #
    def path_child(self, v: int, kind: str) -> int:
        """The child of ``v`` that continues the ``kind`` path (``-1`` for leaves)."""
        self._check(v)
        kids = self.children[v]
        if not kids:
            return -1
        if kind == LEFT:
            return kids[0]
        if kind == RIGHT:
            return kids[-1]
        if kind == HEAVY:
            return self.heavy_child[v]
        raise ValueError(f"unknown path kind {kind!r}")

    def root_leaf_path(self, v: int, kind: str) -> List[int]:
        """Nodes of the ``kind`` root-leaf path of the subtree rooted at ``v``.

        The path starts at ``v`` and repeatedly descends to the left / right /
        heavy child until a leaf is reached.
        """
        path = [v]
        current = v
        while self.children[current]:
            current = self.path_child(current, kind)
            path.append(current)
        return path

    def path_set(self, v: int, kind: str) -> frozenset:
        """Same as :meth:`root_leaf_path` but returned as a frozenset of node ids."""
        return frozenset(self.root_leaf_path(v, kind))

    def on_parent_path(self, v: int, kind: str) -> bool:
        """``True`` iff ``v`` lies on the ``kind`` path of its parent's subtree.

        Equivalently: ``v`` is the leftmost (``LEFT``), rightmost (``RIGHT``)
        or heavy (``HEAVY``) child of its parent.  The root returns ``False``.
        """
        p = self.parents[v]
        if p == -1:
            return False
        return self.path_child(p, kind) == v

    def on_parent_path_all(self, kind: str) -> List[bool]:
        """:meth:`on_parent_path` evaluated for every node, cached per ``kind``.

        ``on_parent_path_all(kind)[v]`` is ``True`` iff ``v`` continues the
        ``kind`` path of its parent.  The flat boolean array is the form the
        vectorized strategy computation (Algorithm 2) and the single-path
        chain builder consume; for ``HEAVY`` it is the heavy-path membership
        index of the whole tree.
        """
        if kind not in PATH_KINDS:
            raise ValueError(f"unknown path kind {kind!r}")
        cached = self._on_path_all.get(kind)
        if cached is None:
            cached = [self.on_parent_path(v, kind) for v in range(self.n)]
            self._on_path_all[kind] = cached
        return cached

    def relevant_subtrees(self, v: int, kind: str) -> List[int]:
        """Roots of the relevant subtrees ``F_v − γ_kind(F_v)`` (Definition 2).

        These are the subtrees hanging off the ``kind`` root-leaf path of the
        subtree rooted at ``v``, i.e. every child of a path node that is not
        itself on the path.  Returned in ascending postorder.
        """
        roots: List[int] = []
        for u in self.root_leaf_path(v, kind):
            next_on_path = self.path_child(u, kind)
            for c in self.children[u]:
                if c != next_on_path:
                    roots.append(c)
        roots.sort()
        return roots

    def path_partitioning(self, kind: str, v: Optional[int] = None) -> List[List[int]]:
        """The ``kind`` path partitioning Γ_kind of the subtree rooted at ``v``.

        Returns a list of node-id lists; the paths are disjoint, each ends at a
        leaf, and together they cover every node of the subtree.
        """
        if v is None:
            v = self.root
        partitions: List[List[int]] = []
        pending = [v]
        while pending:
            u = pending.pop()
            path = self.root_leaf_path(u, kind)
            partitions.append(path)
            pending.extend(self.relevant_subtrees(u, kind))
        return partitions

    # ------------------------------------------------------------------ #
    # Decomposition cardinalities (Lemmas 1-3 of the paper)
    # ------------------------------------------------------------------ #
    def full_decomposition_sizes(self) -> List[int]:
        """``|A(F_v)|`` for every node ``v`` (Lemma 1).

        ``|A(F)| = |F|(|F|+3)/2 − Σ_{x∈F} |F_x|`` — the number of distinct
        subforests in the full decomposition of the subtree rooted at ``v``.
        """
        if self._full_decomp is None:
            subtree_size_sums = [0] * self.n
            for v in range(self.n):
                subtree_size_sums[v] = self.sizes[v] + sum(
                    subtree_size_sums[c] for c in self.children[v]
                )
            self._full_decomp = [
                self.sizes[v] * (self.sizes[v] + 3) // 2 - subtree_size_sums[v]
                for v in range(self.n)
            ]
        return self._full_decomp

    def left_decomposition_sizes(self) -> List[int]:
        """``|F(F_v, Γ_L(F_v))|`` for every node ``v`` (Lemma 3, left paths)."""
        if self._left_decomp is None:
            self._left_decomp = self._path_decomposition_sizes(LEFT)
        return self._left_decomp

    def right_decomposition_sizes(self) -> List[int]:
        """``|F(F_v, Γ_R(F_v))|`` for every node ``v`` (Lemma 3, right paths)."""
        if self._right_decomp is None:
            self._right_decomp = self._path_decomposition_sizes(RIGHT)
        return self._right_decomp

    def _path_decomposition_sizes(self, kind: str) -> List[int]:
        """Number of relevant subforests of the recursive ``kind`` decomposition.

        By Lemma 3 this equals the sum of the sizes of all relevant subtrees in
        the recursive decomposition, which admits the bottom-up recurrence

        ``off[v] = Σ_c off[c] + Σ_{c not on kind path of v} sizes[c]``
        ``result[v] = sizes[v] + off[v]``
        """
        off = [0] * self.n
        result = [0] * self.n
        for v in range(self.n):
            total = 0
            path_child = self.path_child(v, kind)
            for c in self.children[v]:
                total += off[c]
                if c != path_child:
                    total += self.sizes[c]
            off[v] = total
            result[v] = self.sizes[v] + total
        return result

    # ------------------------------------------------------------------ #
    # Zhang-Shasha keyroots
    # ------------------------------------------------------------------ #
    def keyroots_left(self) -> List[int]:
        """LR-keyroots for the left-path (classic Zhang–Shasha) decomposition.

        A node is a keyroot iff it is the root or it is not the leftmost child
        of its parent (equivalently, its leftmost leaf differs from its
        parent's).  Returned in ascending postorder.
        """
        if self._keyroots_left is None:
            self._keyroots_left = [
                v
                for v in range(self.n)
                if self.parents[v] == -1 or self.lml[v] != self.lml[self.parents[v]]
            ]
        return self._keyroots_left

    def keyroots_right(self) -> List[int]:
        """Keyroots for the mirror (right-path) Zhang–Shasha decomposition."""
        if self._keyroots_right is None:
            self._keyroots_right = [
                v
                for v in range(self.n)
                if self.parents[v] == -1 or self.rml[v] != self.rml[self.parents[v]]
            ]
        return self._keyroots_right

    # ------------------------------------------------------------------ #
    # Index arrays for the iterative single-path functions (repro.algorithms.spf)
    # ------------------------------------------------------------------ #
    def rpost_of_post(self) -> List[int]:
        """Reverse-postorder id of every node, indexed by postorder id.

        The reverse postorder visits children right-to-left before their
        parent, i.e. it is the postorder of the *mirrored* tree, and equals
        ``n - 1 - preorder``.  In reverse-postorder coordinates the subtree of
        ``v`` occupies the contiguous range
        ``[rpost(v) - sizes[v] + 1, rpost(v)]`` and the rightmost leaf plays
        the role of the leftmost leaf, which lets the right-path single-path
        function reuse the left-path recurrence on flat arrays without
        materializing a mirrored tree.
        """
        if self._rpost_of_post is None:
            last = self.n - 1
            self._rpost_of_post = [last - p for p in self.pre_of_post]
        return self._rpost_of_post

    def post_of_rpost(self) -> List[int]:
        """Inverse of :meth:`rpost_of_post`: postorder id for a reverse-postorder id."""
        if self._post_of_rpost is None:
            inverse = [0] * self.n
            for post_id, rpost_id in enumerate(self.rpost_of_post()):
                inverse[rpost_id] = post_id
            self._post_of_rpost = inverse
        return self._post_of_rpost

    def subtree_offset(self, v: int) -> int:
        """Postorder id of the first node of the subtree rooted at ``v``.

        ``u - subtree_offset(v)`` is the *subtree-local* index of a descendant
        ``u``, the row/column index used by the dense single-path tables.
        """
        self._check(v)
        return v - self.sizes[v] + 1

    def subtree_keyroots(self, v: int, kind: str = LEFT) -> List[int]:
        """Keyroots of the subtree rooted at ``v``, in ascending postorder.

        For ``v`` the whole-tree root this equals :meth:`keyroots_left` /
        :meth:`keyroots_right`.  For an inner ``v`` the result is the slice of
        the global keyroot list falling inside the subtree's contiguous
        postorder range, plus ``v`` itself (the root of a subtree is always a
        keyroot of that subtree even when it is a leftmost/rightmost child
        globally).
        """
        self._check(v)
        if kind == LEFT:
            keyroots = self.keyroots_left()
        elif kind == RIGHT:
            keyroots = self.keyroots_right()
        else:
            raise ValueError(f"subtree keyroots are defined for left/right paths, not {kind!r}")
        low = self.subtree_offset(v)
        slice_ = keyroots[bisect_left(keyroots, low) : bisect_right(keyroots, v)]
        if not slice_ or slice_[-1] != v:
            slice_ = slice_ + [v]
        return slice_

    # ------------------------------------------------------------------ #
    # Derived trees
    # ------------------------------------------------------------------ #
    def to_node(self, v: Optional[int] = None) -> Node:
        """Reconstruct a mutable :class:`Node` structure for the subtree at ``v``."""
        if v is None:
            v = self.root
        self._check(v)
        nodes = {u: Node(self.labels[u]) for u in self.subtree_nodes(v)}
        for u in self.subtree_nodes(v):
            nodes[u].children = [nodes[c] for c in self.children[u]]
        return nodes[v]

    def subtree(self, v: int) -> "Tree":
        """Return the subtree rooted at ``v`` as a new :class:`Tree`."""
        return Tree(self.to_node(v))

    def mirrored(self) -> "Tree":
        """Return a new tree with the order of children reversed at every node."""
        return Tree(self.to_node().mirrored())

    # ------------------------------------------------------------------ #
    # Label sequences (used by bounds and serializers)
    # ------------------------------------------------------------------ #
    def labels_postorder(self) -> List[object]:
        """Labels in postorder."""
        return list(self.labels)

    def labels_preorder(self) -> List[object]:
        """Labels in preorder."""
        return [self.labels[self.post_of_pre[i]] for i in range(self.n)]

    # ------------------------------------------------------------------ #
    # Equality / representation
    # ------------------------------------------------------------------ #
    def structurally_equal(self, other: "Tree") -> bool:
        """``True`` iff both trees have identical shape and labels."""
        if not isinstance(other, Tree):
            return False
        return (
            self.n == other.n
            and list(self.labels) == list(other.labels)
            and list(self.parents) == list(other.parents)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(n={self.n}, depth={self.depth()}, root_label={self.labels[self.root]!r})"
