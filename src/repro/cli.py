"""Command-line interface.

Installed as the ``rted`` console script.  Sub-commands:

* ``rted distance  '{a{b}{c}}' '{a{b}{d}}'`` — distance between two trees
  (bracket notation by default, files with ``@path``);
* ``rted mapping   TREE1 TREE2`` — optimal edit script;
* ``rted compare   TREE1 TREE2`` — all paper algorithms on one pair;
* ``rted generate  --shape zigzag --size 31`` — emit a synthetic tree;
* ``rted join @collection.txt --threshold 3`` — corpus-indexed similarity
  self join (or ``--other @b.txt`` for a cross join) with the filter cascade
  and optional multiprocessing fan-out;
* ``rted query QUERY @collection.txt --top-k 5`` (or ``--range 3``) —
  one-vs-corpus retrieval through the query engine (metric-index search
  when the cost model allows, sound linear scan otherwise);
* ``rted serve @collection.txt --port 8617`` — HTTP serving layer with
  per-request deadlines, admission control, SIGTERM graceful drain, live
  corpus management (``POST /corpora``, ``POST /corpora/NAME/trees``,
  ``DELETE /corpora/NAME/trees/ID``) and epoch-keyed pair-result caching;
* ``rted shm-reap`` — remove shared-memory blocks orphaned by killed joins;
* ``rted experiment fig8|fig9|fig10|table1|table2|ablation`` — run one of the
  paper's experiments and print its table(s).

Library failures (malformed trees, unknown algorithms, unreadable files,
batch-execution aborts) exit with a one-line diagnostic on stderr and a
distinct nonzero status — see :data:`EXIT_CODES` — instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .api import compare_algorithms, compute, edit_script, parse_tree
from .algorithms.base import ENGINES
from .algorithms.registry import available_algorithms
from .datasets.random_trees import random_tree
from .datasets.shapes import SHAPE_GENERATORS, make_shape
from .exceptions import (
    BatchExecutionError,
    ComputeTimeoutError,
    ParseError,
    QueryError,
    ReproError,
    TreeConstructionError,
    UnknownAlgorithmError,
    UnknownEngineError,
)
from .experiments import (
    ablation_strategy,
    fig8_subproblems,
    fig9_runtime,
    fig10_strategy_overhead,
    table1_join,
    table2_treefam,
)
from .api import similarity_join
from .io.bracket import parse_bracket_collection, to_bracket
from .visualize import render_tree

#: Exit codes per failure class (BSD ``sysexits.h`` conventions): usage
#: errors 64, malformed input data 65, unreadable input files 66, an
#: unrecoverable batch execution 69 (``EX_UNAVAILABLE``), any other library
#: error 70 (``EX_SOFTWARE``), an exceeded compute deadline 124 (matching
#: ``timeout(1)``), and Ctrl-C 130 (128 + SIGINT, the shell convention).
EXIT_CODES = {
    "usage": 64,
    "data": 65,
    "noinput": 66,
    "batch": 69,
    "software": 70,
    "timeout": 124,
    "interrupted": 130,
}


def _load_tree_argument(argument: str, fmt: Optional[str]):
    """A tree argument is inline text, or ``@path`` to read it from a file."""
    if argument.startswith("@"):
        with open(argument[1:], "r", encoding="utf-8") as handle:
            argument = handle.read()
    return parse_tree(argument, fmt=fmt)


def _load_collection_argument(argument: str):
    """A collection argument is ``@path`` to a bracket-per-line file."""
    if not argument.startswith("@"):
        raise SystemExit(
            f"collection arguments must be @path files, got {argument!r}"
        )
    with open(argument[1:], "r", encoding="utf-8") as handle:
        return parse_bracket_collection(handle.read())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rted",
        description="RTED: robust tree edit distance (reproduction of Pawlik & Augsten, VLDB 2011)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    distance = subparsers.add_parser("distance", help="compute the tree edit distance")
    distance.add_argument("tree_f", help="first tree (inline or @file)")
    distance.add_argument("tree_g", help="second tree (inline or @file)")
    distance.add_argument(
        "--algorithm", default="rted", choices=available_algorithms(), help="algorithm to use"
    )
    distance.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINES),
        help="execution engine: auto (default, resolves to the iterative spf "
        "executor), spf (fully iterative single-path functions for all path "
        "kinds), native (spf plus the optional compiled unit-cost kernels; "
        "falls back to spf kernels when no compiled provider is available), "
        "or recursive (the cross-check oracle)",
    )
    distance.add_argument("--format", dest="fmt", default=None, help="bracket | newick | xml")
    distance.add_argument(
        "--cutoff",
        type=float,
        default=None,
        help="bounded computation: print the exact distance when it is below "
        "the cutoff, or '>= <bound>' once distance >= cutoff is proven "
        "(aborting early instead of finishing the computation)",
    )
    distance.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds; on expiry exit 124 with a "
        "one-line diagnostic (cooperative: no partial output is printed)",
    )
    distance.add_argument("--verbose", action="store_true", help="print timings and subproblems")

    mapping = subparsers.add_parser("mapping", help="compute an optimal edit script")
    mapping.add_argument("tree_f")
    mapping.add_argument("tree_g")
    mapping.add_argument("--format", dest="fmt", default=None)

    compare = subparsers.add_parser("compare", help="run all paper algorithms on one pair")
    compare.add_argument("tree_f")
    compare.add_argument("tree_g")
    compare.add_argument("--format", dest="fmt", default=None)

    generate = subparsers.add_parser("generate", help="emit a synthetic tree in bracket notation")
    generate.add_argument(
        "--shape", default="random", choices=sorted(SHAPE_GENERATORS) + ["random"]
    )
    generate.add_argument("--size", type=int, default=31)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--render", action="store_true", help="also print an ASCII rendering")

    join = subparsers.add_parser(
        "join", help="similarity join over a collection of trees (TED < threshold)"
    )
    join.add_argument(
        "collection",
        help="collection file as @path (one bracket-notation tree per line, "
        "blank lines and # comments ignored)",
    )
    join.add_argument(
        "--other",
        default=None,
        help="second collection (@path) for a cross join; omitted = self join",
    )
    join.add_argument("--threshold", type=float, required=True, help="match when TED < τ")
    join.add_argument(
        "--algorithm", default="rted", choices=available_algorithms(), help="exact verifier"
    )
    join.add_argument("--engine", default=None, choices=list(ENGINES))
    join.add_argument(
        "--no-cascade",
        action="store_true",
        help="disable the filter cascade (verify every pair exactly)",
    )
    join.add_argument(
        "--approximate",
        action="store_true",
        help="add the pq-gram heuristic filter (may drop matches; faster)",
    )
    join.add_argument(
        "--no-workspace",
        action="store_true",
        help="disable the amortized verification workspace (fresh per-pair "
        "contexts; distances are bit-identical either way)",
    )
    join.add_argument(
        "--no-bounded-verify",
        action="store_true",
        help="disable τ-bounded verification (run every surviving pair's "
        "exact TED to completion instead of aborting once TED >= τ is "
        "proven; the match set is identical either way)",
    )
    join.add_argument(
        "--no-batch-kernel",
        action="store_true",
        help="disable the struct-of-arrays batch verification kernel (verify "
        "small unit-cost pairs one at a time; results are bit-identical "
        "either way)",
    )
    join.add_argument("--workers", type=int, default=1, help="verification processes")
    join.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        help="supervised verification: tear down and retry if no chunk "
        "completes for this many seconds (hung-worker detection; default "
        "off, or the RTED_CHUNK_TIMEOUT environment variable)",
    )
    join.add_argument(
        "--chunk-retries",
        type=int,
        default=None,
        help="supervised verification: failed attempts per chunk before it "
        "falls back to in-process serial execution (default 3, or the "
        "RTED_CHUNK_RETRIES environment variable)",
    )
    join.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds for the whole join; on expiry the "
        "worker pool is torn down, shared memory unlinked, and the command "
        "exits 124",
    )
    join.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage join statistics to stderr (results on stdout "
        "stay machine-parseable)",
    )

    query = subparsers.add_parser(
        "query",
        help="one-vs-corpus retrieval: top-k nearest or range query",
    )
    query.add_argument("query", help="query tree (inline or @file)")
    query.add_argument(
        "collection",
        help="corpus file as @path (one bracket-notation tree per line, "
        "blank lines and # comments ignored)",
    )
    mode = query.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--top-k", type=int, default=None, help="return the k nearest corpus trees"
    )
    mode.add_argument(
        "--range",
        dest="range_threshold",
        type=float,
        default=None,
        help="return every corpus tree with TED < τ",
    )
    query.add_argument(
        "--algorithm", default="rted", choices=available_algorithms(), help="exact verifier"
    )
    query.add_argument("--engine", default=None, choices=list(ENGINES))
    query.add_argument("--format", dest="fmt", default=None, help="bracket | newick | xml")
    query.add_argument(
        "--no-cascade",
        action="store_true",
        help="disable the filter cascade (refine every candidate exactly)",
    )
    query.add_argument(
        "--no-metric-index",
        action="store_true",
        help="disable VP-tree candidate generation (always linear scan; "
        "results are identical either way)",
    )
    query.add_argument("--workers", type=int, default=1, help="refinement processes")
    query.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds; on expiry the verified-so-far "
        "matches are printed with a '# partial result' marker on stderr "
        "(always a subset of the full answer) and the command exits 0",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print query statistics to stderr (results on stdout stay "
        "machine-parseable)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve distances/queries/joins over HTTP with per-request "
        "deadlines, admission control and graceful drain",
    )
    serve.add_argument(
        "corpora",
        nargs="*",
        help="corpus files as @path (registered as 'default', 'corpus1', "
        "...) or NAME=@path to pick the registration name",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8617,
        help="listen port (0 binds an ephemeral port, printed on stderr)",
    )
    serve.add_argument(
        "--algorithm", default="rted", choices=available_algorithms(),
        help="default algorithm for requests that name none",
    )
    serve.add_argument("--engine", default=None, choices=list(ENGINES))
    serve.add_argument(
        "--workers", type=int, default=1, help="processes per join/refinement fan-out"
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4,
        help="compute requests running concurrently",
    )
    serve.add_argument(
        "--max-queue", type=int, default=16,
        help="admitted requests allowed to wait; beyond max-inflight + "
        "max-queue the service sheds with 503 + Retry-After",
    )
    serve.add_argument(
        "--default-deadline", type=float, default=None,
        help="budget (seconds) for requests that set no deadline",
    )
    serve.add_argument(
        "--max-deadline", type=float, default=None,
        help="upper clamp on client-requested deadlines",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=5.0,
        help="seconds SIGTERM waits for in-flight work before cancelling it",
    )
    serve.add_argument(
        "--pair-cache-size", type=int, default=1024,
        help="per-corpus epoch-keyed LRU capacity for /distance pair "
        "results (0 disables caching)",
    )

    shm_reap = subparsers.add_parser(
        "shm-reap",
        help="remove shared-memory blocks orphaned by killed join processes",
    )
    shm_reap.add_argument(
        "--dry-run",
        action="store_true",
        help="list the orphaned blocks without removing them",
    )

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument(
        "name", choices=["fig8", "fig9", "fig10", "table1", "table2", "ablation"]
    )

    return parser


def _dispatch(args) -> int:
    """Execute one parsed sub-command (library errors handled by ``main``)."""
    if args.command == "distance":
        tree_f = _load_tree_argument(args.tree_f, args.fmt)
        tree_g = _load_tree_argument(args.tree_g, args.fmt)
        result = compute(
            tree_f, tree_g, algorithm=args.algorithm, engine=args.engine,
            cutoff=args.cutoff, deadline=args.deadline,
        )
        if args.verbose:
            print(f"algorithm:   {result.algorithm}")
            if "engine" in result.extra:
                print(f"engine:      {result.extra['engine']}")
            if result.bounded:
                print(f"distance:    >= {result.cutoff:g} (lower bound {result.lower_bound:g})")
                print(f"aborted:     {'early' if result.aborted else 'final check'}")
            else:
                print(f"distance:    {result.distance}")
            print(f"subproblems: {result.subproblems}")
            print(f"strategy:    {result.strategy_time:.4f}s")
            print(f"total time:  {result.total_time:.4f}s")
        elif result.bounded:
            print(f">= {result.lower_bound:g}")
        else:
            print(result.distance)
        return 0

    if args.command == "mapping":
        tree_f = _load_tree_argument(args.tree_f, args.fmt)
        tree_g = _load_tree_argument(args.tree_g, args.fmt)
        for operation in edit_script(tree_f, tree_g):
            print(operation)
        return 0

    if args.command == "compare":
        tree_f = _load_tree_argument(args.tree_f, args.fmt)
        tree_g = _load_tree_argument(args.tree_g, args.fmt)
        results = compare_algorithms(tree_f, tree_g)
        for name, result in results.items():
            print(
                f"{name:12s} distance={result.distance:<8g} "
                f"subproblems={result.subproblems:<10d} time={result.total_time:.4f}s"
            )
        return 0

    if args.command == "generate":
        if args.shape == "random":
            tree = random_tree(args.size, rng=args.seed)
        else:
            tree = make_shape(args.shape, args.size)
        print(to_bracket(tree))
        if args.render:
            print(render_tree(tree, max_nodes=200))
        return 0

    if args.command == "join":
        from .join.supervisor import ExecutionPolicy

        collection = _load_collection_argument(args.collection)
        other = _load_collection_argument(args.other) if args.other else None
        policy = ExecutionPolicy.default()
        if args.chunk_timeout is not None:
            policy.chunk_timeout = args.chunk_timeout
        if args.chunk_retries is not None:
            policy.max_chunk_retries = args.chunk_retries
        result = similarity_join(
            collection,
            args.threshold,
            collection_b=other,
            algorithm=args.algorithm,
            engine=args.engine,
            use_cascade=not args.no_cascade,
            approximate=args.approximate,
            workers=args.workers,
            workspace=not args.no_workspace,
            bounded_verify=not args.no_bounded_verify,
            batch_kernel=not args.no_batch_kernel,
            policy=policy,
            deadline=args.deadline,
        )
        for i, j, distance in result.matches:
            print(f"{i}\t{j}\t{distance:g}")
        if args.stats:
            # Stats go to stderr so piped stdout stays machine-parseable.
            stats = result.stats
            err = sys.stderr
            print(f"# pairs total:      {stats.pairs_total}", file=err)
            print(
                f"# candidates:       {stats.candidate_pairs} (index pruned {stats.index_pruned})",
                file=err,
            )
            for stage, count in stats.stage_pruned.items():
                print(f"# pruned by {stage}: {count}", file=err)
            print(f"# accepted early:   {stats.accepted_early}", file=err)
            print(f"# exact TED runs:   {stats.exact_computed}", file=err)
            print(f"# aborted early:    {stats.aborted_early}", file=err)
            print(f"# verify workers:   {stats.verify_workers}", file=err)
            if stats.retried_chunks or stats.failed_workers:
                print(f"# retried chunks:   {stats.retried_chunks}", file=err)
                print(f"# failed workers:   {stats.failed_workers}", file=err)
            if stats.degraded_to is not None:
                print(f"# degraded to:      {stats.degraded_to}", file=err)
            if stats.poisoned_pairs:
                print(f"# poisoned pairs:   {stats.poisoned_pairs}", file=err)
            print(f"# matches:          {stats.matches}", file=err)
            print(f"# filter rate:      {stats.filter_rate:.3f}", file=err)
            print(f"# total time:       {stats.total_time:.4f}s", file=err)
        return 0

    if args.command == "query":
        from .api import knn, range_query
        from .join.corpus import TreeCorpus

        query_tree = _load_tree_argument(args.query, args.fmt)
        corpus = TreeCorpus(_load_collection_argument(args.collection))
        options = dict(
            algorithm=args.algorithm,
            engine=args.engine,
            workers=args.workers,
            use_cascade=not args.no_cascade,
            use_metric_index=not args.no_metric_index,
        )
        if args.top_k is not None:
            result = knn(query_tree, corpus, args.top_k, deadline=args.deadline, **options)
        else:
            result = range_query(
                query_tree, corpus, args.range_threshold, deadline=args.deadline, **options
            )
        for index, distance in result.matches:
            print(f"{index}\t{distance:g}")
        if result.stats.partial:
            print("# partial result: deadline expired mid-search", file=sys.stderr)
        if args.stats:
            # Stats go to stderr so piped stdout stays machine-parseable.
            stats = result.stats
            err = sys.stderr
            print(f"# corpus size:      {stats.corpus_size}", file=err)
            print(f"# metric index:     {'used' if stats.metric_index_used else 'off'}", file=err)
            if stats.metric_index_used:
                print(f"# vp nodes visited: {stats.vp_nodes_visited}", file=err)
                print(f"# vp pruned trees:  {stats.vp_pruned_subtrees}", file=err)
            print(
                f"# candidates:       {stats.candidate_pairs} (index pruned {stats.index_pruned})",
                file=err,
            )
            for stage, count in stats.stage_pruned.items():
                print(f"# pruned by {stage}: {count}", file=err)
            print(f"# exact TED runs:   {stats.exact_computed}", file=err)
            print(f"# aborted early:    {stats.aborted_early}", file=err)
            print(f"# matches:          {stats.matches}", file=err)
            print(f"# total time:       {stats.total_time:.4f}s", file=err)
        return 0

    if args.command == "serve":
        from .join.corpus import TreeCorpus
        from .service import ServiceConfig, run_server

        corpora = {}
        for position, spec in enumerate(args.corpora):
            name, sep, path = spec.partition("=")
            if not sep:
                name, path = ("default" if position == 0 else f"corpus{position}"), spec
            if name in corpora:
                raise SystemExit(f"duplicate corpus name {name!r}")
            corpora[name] = TreeCorpus(_load_collection_argument(path))
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            default_deadline=args.default_deadline,
            max_deadline=args.max_deadline,
            drain_grace=args.drain_grace,
            pair_cache_size=args.pair_cache_size,
        )
        return run_server(
            corpora,
            config,
            algorithm=args.algorithm,
            engine=args.engine,
            workers=args.workers,
        )

    if args.command == "shm-reap":
        from .join.shared import reap_stale

        reaped = reap_stale(dry_run=args.dry_run)
        verb = "would reap" if args.dry_run else "reaped"
        for name in reaped:
            print(name)
        print(f"# {verb} {len(reaped)} orphaned block(s)", file=sys.stderr)
        return 0

    if args.command == "experiment":
        runners = {
            "fig8": lambda: fig8_subproblems.format_fig8(fig8_subproblems.run_fig8()),
            "fig9": lambda: fig9_runtime.format_fig9(fig9_runtime.run_fig9()),
            "fig10": lambda: fig10_strategy_overhead.format_fig10(
                fig10_strategy_overhead.run_fig10()
            ),
            "table1": lambda: table1_join.format_table1(table1_join.run_table1()),
            "table2": lambda: table2_treefam.format_table2(table2_treefam.run_table2()),
            "ablation": lambda: ablation_strategy.format_ablations(
                ablation_strategy.run_strategy_space_ablation(),
                ablation_strategy.run_strategy_computation_ablation(),
            ),
        }
        print(runners[args.name]())
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (returns a process exit code).

    Library errors are reported as a single ``rted: ...`` line on stderr
    with a failure-class exit code (:data:`EXIT_CODES`) — a malformed tree
    must not look like a crash.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ParseError as exc:
        # Most parse messages already say "... at position N"; only append
        # the offset when the message itself doesn't carry it.
        where = ""
        if exc.position is not None and str(exc.position) not in str(exc):
            where = f" (at offset {exc.position})"
        print(f"rted: parse error: {exc}{where}", file=sys.stderr)
        return EXIT_CODES["data"]
    except TreeConstructionError as exc:
        print(f"rted: invalid tree: {exc}", file=sys.stderr)
        return EXIT_CODES["data"]
    except (UnknownAlgorithmError, UnknownEngineError, QueryError) as exc:
        print(f"rted: {exc}", file=sys.stderr)
        return EXIT_CODES["usage"]
    except BatchExecutionError as exc:
        print(f"rted: batch execution failed: {exc}", file=sys.stderr)
        return EXIT_CODES["batch"]
    except ComputeTimeoutError as exc:
        print(f"rted: {exc}", file=sys.stderr)
        return EXIT_CODES["timeout"]
    except KeyboardInterrupt:
        # The supervised fan-out has already torn down its worker pool and
        # unlinked exported shared memory on the way up (supervisor._drain
        # re-raises only after a hard shutdown); report the conventional
        # SIGINT status instead of a traceback.
        print("rted: interrupted", file=sys.stderr)
        return EXIT_CODES["interrupted"]
    except ReproError as exc:
        print(f"rted: error: {exc}", file=sys.stderr)
        return EXIT_CODES["software"]
    except OSError as exc:
        name = getattr(exc, "filename", None)
        where = f" ({name})" if name else ""
        print(f"rted: cannot read input{where}: {exc.strerror or exc}", file=sys.stderr)
        return EXIT_CODES["noinput"]


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
