"""ASCII rendering of trees and edit mappings.

Plot-free visual aids for the CLI and the examples: an indented tree view
with box-drawing connectors, a compact single-line outline, and a rendering
of an edit mapping that annotates every node with the operation applied to
it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..algorithms.edit_mapping import EditMapping
from ..trees.tree import Tree


def _connector_lines(
    tree: Tree, describe: Callable[[int], str], max_nodes: Optional[int] = None
) -> Tuple[List[str], bool]:
    """Box-drawing lines for every node, depth-first and recursion-free.

    The explicit stack carries the indentation prefix of each pending node, so
    arbitrarily deep trees render at the default interpreter recursion limit.
    Returns ``(lines, truncated)``.
    """
    lines: List[str] = []
    # stack entries: (node, prefix, is_last, is_root)
    stack: List[Tuple[int, str, bool, bool]] = [(tree.root, "", True, True)]
    while stack:
        if max_nodes is not None and len(lines) >= max_nodes:
            return lines, True
        v, prefix, is_last, is_root = stack.pop()
        if is_root:
            lines.append(describe(v))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + describe(v))
            child_prefix = prefix + ("    " if is_last else "│   ")
        children = tree.children[v]
        for index in range(len(children) - 1, -1, -1):
            stack.append((children[index], child_prefix, index == len(children) - 1, False))
    return lines, False


def render_tree(tree: Tree, max_nodes: Optional[int] = None) -> str:
    """Render a tree with box-drawing connectors, one node per line.

    ``max_nodes`` truncates the output for very large trees (an ellipsis line
    is appended when truncation happens).
    """
    lines, truncated = _connector_lines(
        tree, lambda v: str(tree.labels[v]), max_nodes=max_nodes
    )
    if truncated:
        lines.append("…")
    return "\n".join(lines)


def render_outline(tree: Tree) -> str:
    """Compact one-line outline, e.g. ``a(b, c(d))``."""
    pieces: List[str] = []
    # stack entries are node ids to emit, or literal strings to append.
    stack: List[object] = [tree.root]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            pieces.append(item)
            continue
        pieces.append(str(tree.labels[item]))
        children = tree.children[item]
        if children:
            pieces.append("(")
            stack.append(")")
            for index in range(len(children) - 1, -1, -1):
                if index:
                    stack.append(children[index])
                    stack.append(", ")
                else:
                    stack.append(children[index])
    return "".join(pieces)


def render_mapping(tree_f: Tree, tree_g: Tree, mapping: EditMapping) -> str:
    """Render the source tree with per-node edit annotations.

    Matched nodes show ``=``, renamed nodes show ``~ new-label``, deleted
    nodes show ``-``; inserted target nodes are listed below the tree.
    """
    match_of: Dict[int, int] = {v: w for v, w in mapping.matches}
    deletions = set(mapping.deletions)

    def annotate(v: int) -> str:
        if v in deletions:
            return f"{tree_f.labels[v]}  [- delete]"
        w = match_of.get(v)
        if w is None:
            return str(tree_f.labels[v])
        if tree_f.labels[v] == tree_g.labels[w]:
            return f"{tree_f.labels[v]}  [=]"
        return f"{tree_f.labels[v]}  [~ rename to {tree_g.labels[w]!r}]"

    lines, _ = _connector_lines(tree_f, annotate)

    if mapping.insertions:
        lines.append("")
        lines.append("inserted in target:")
        for w in sorted(mapping.insertions):
            lines.append(f"  + {tree_g.labels[w]!r} (target node {w})")
    return "\n".join(lines)
