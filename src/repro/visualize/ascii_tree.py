"""ASCII rendering of trees and edit mappings.

Plot-free visual aids for the CLI and the examples: an indented tree view
with box-drawing connectors, a compact single-line outline, and a rendering
of an edit mapping that annotates every node with the operation applied to
it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..algorithms.edit_mapping import EditMapping
from ..trees.tree import Tree


def render_tree(tree: Tree, max_nodes: Optional[int] = None) -> str:
    """Render a tree with box-drawing connectors, one node per line.

    ``max_nodes`` truncates the output for very large trees (an ellipsis line
    is appended when truncation happens).
    """
    lines: List[str] = []
    truncated = False

    def visit(v: int, prefix: str, is_last: bool, is_root: bool) -> None:
        nonlocal truncated
        if max_nodes is not None and len(lines) >= max_nodes:
            truncated = True
            return
        if is_root:
            lines.append(str(tree.labels[v]))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + str(tree.labels[v]))
            child_prefix = prefix + ("    " if is_last else "│   ")
        children = tree.children[v]
        for index, child in enumerate(children):
            visit(child, child_prefix, index == len(children) - 1, False)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000 + 10 * tree.n))
    try:
        visit(tree.root, "", True, True)
    finally:
        sys.setrecursionlimit(old_limit)

    if truncated:
        lines.append("…")
    return "\n".join(lines)


def render_outline(tree: Tree) -> str:
    """Compact one-line outline, e.g. ``a(b, c(d))``."""
    pieces: List[str] = []

    def visit(v: int) -> None:
        pieces.append(str(tree.labels[v]))
        children = tree.children[v]
        if children:
            pieces.append("(")
            for index, child in enumerate(children):
                if index:
                    pieces.append(", ")
                visit(child)
            pieces.append(")")

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000 + 10 * tree.n))
    try:
        visit(tree.root)
    finally:
        sys.setrecursionlimit(old_limit)
    return "".join(pieces)


def render_mapping(tree_f: Tree, tree_g: Tree, mapping: EditMapping) -> str:
    """Render the source tree with per-node edit annotations.

    Matched nodes show ``=``, renamed nodes show ``~ new-label``, deleted
    nodes show ``-``; inserted target nodes are listed below the tree.
    """
    match_of: Dict[int, int] = {v: w for v, w in mapping.matches}
    deletions = set(mapping.deletions)

    lines: List[str] = []

    def annotate(v: int) -> str:
        if v in deletions:
            return f"{tree_f.labels[v]}  [- delete]"
        w = match_of.get(v)
        if w is None:
            return str(tree_f.labels[v])
        if tree_f.labels[v] == tree_g.labels[w]:
            return f"{tree_f.labels[v]}  [=]"
        return f"{tree_f.labels[v]}  [~ rename to {tree_g.labels[w]!r}]"

    def visit(v: int, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(annotate(v))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + annotate(v))
            child_prefix = prefix + ("    " if is_last else "│   ")
        children = tree_f.children[v]
        for index, child in enumerate(children):
            visit(child, child_prefix, index == len(children) - 1, False)

    visit(tree_f.root, "", True, True)

    if mapping.insertions:
        lines.append("")
        lines.append("inserted in target:")
        for w in sorted(mapping.insertions):
            lines.append(f"  + {tree_g.labels[w]!r} (target node {w})")
    return "\n".join(lines)
