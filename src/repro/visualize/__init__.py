"""ASCII visualization helpers."""

from .ascii_tree import render_mapping, render_outline, render_tree

__all__ = ["render_tree", "render_outline", "render_mapping"]
