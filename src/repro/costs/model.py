"""Cost models for node edit operations.

The tree edit distance is parameterized by three cost functions: ``delete(v)``,
``insert(w)`` and ``rename(v, w)``.  The paper (and the canonical benchmarks)
use the *unit cost model* — every operation costs 1 and renaming a node to an
identical label costs 0 — but the algorithms in this library accept any model
implementing the :class:`CostModel` interface, so applications can e.g. weight
renames by string similarity or make structural nodes cheaper to delete than
content nodes.

Cost functions receive node *labels*, not node ids, because the distance is a
function of labels and structure only.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from ..exceptions import CostModelError


class CostModel:
    """Interface for edit-operation cost models.

    Subclasses must guarantee non-negative costs and
    ``rename(a, a) == 0`` for the distance to be a metric; :meth:`validate`
    spot-checks these properties on a sample of labels.
    """

    def delete(self, label: object) -> float:
        """Cost of deleting a node with the given label."""
        raise NotImplementedError

    def insert(self, label: object) -> float:
        """Cost of inserting a node with the given label."""
        raise NotImplementedError

    def rename(self, label_from: object, label_to: object) -> float:
        """Cost of renaming ``label_from`` into ``label_to``."""
        raise NotImplementedError

    def min_operation_cost(self) -> Optional[float]:
        """A proven lower bound on the cost of any single edit operation.

        Returns a value ``c ≥ 0`` such that *every* delete, insert and
        non-identity rename under this model costs at least ``c``, or ``None``
        when no such bound is known.  Unit-cost filters (the lower bounds in
        :mod:`repro.bounds` count edit *operations*) are scaled by this value
        to stay sound under arbitrary cost models: ``c · ops_bound ≤ TED``.
        A model that cannot prove a positive bound must return ``None`` (or
        ``0.0``), which disables lower-bound pruning rather than risking
        dropped matches — see the soundness rule in ``DESIGN.md``.
        """
        return None

    def is_metric(self) -> bool:
        """Whether the induced tree edit distance is provably a metric.

        ``True`` only when the label-level costs form a metric on
        ``labels ∪ {ε}`` — symmetric (``delete(l) == insert(l)``,
        ``rename(a, b) == rename(b, a)``) and satisfying the triangle
        inequality (in particular ``rename(a, b) ≤ delete(a) + insert(b)``)
        — which makes the TED itself symmetric and triangle-respecting
        (Zhang & Shasha).  Metric-space indexes
        (:mod:`repro.join.metric_index`) prune with the triangle
        inequality, so they consult this flag and **soundly fall back to a
        linear scan** whenever it is ``False``.  The base implementation
        returns ``False``: a model that cannot *prove* metricity must not
        claim it (an unsound ``True`` silently drops query results; a
        conservative ``False`` only costs speed).
        """
        return False

    # ------------------------------------------------------------------ #
    def validate(self, sample_labels: Tuple[object, ...] = ("a", "b", "")) -> None:
        """Raise :class:`CostModelError` if the model breaks basic invariants."""
        for label in sample_labels:
            if self.delete(label) < 0 or self.insert(label) < 0:
                raise CostModelError("delete/insert costs must be non-negative")
            if self.rename(label, label) != 0:
                raise CostModelError("rename(x, x) must be 0")
            for other in sample_labels:
                if self.rename(label, other) < 0:
                    raise CostModelError("rename costs must be non-negative")


class UnitCostModel(CostModel):
    """The standard unit cost model: every edit costs 1, identity rename 0."""

    def delete(self, label: object) -> float:
        return 1.0

    def insert(self, label: object) -> float:
        return 1.0

    def rename(self, label_from: object, label_to: object) -> float:
        return 0.0 if label_from == label_to else 1.0

    def min_operation_cost(self) -> Optional[float]:
        return 1.0

    def is_metric(self) -> bool:
        # Unit costs are the canonical label metric: symmetric, and
        # rename (1) never beats delete + insert (2).
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UnitCostModel()"


class WeightedCostModel(CostModel):
    """Constant but independently weighted delete / insert / rename costs."""

    def __init__(
        self, delete_cost: float = 1.0, insert_cost: float = 1.0, rename_cost: float = 1.0
    ) -> None:
        if min(delete_cost, insert_cost, rename_cost) < 0:
            raise CostModelError("costs must be non-negative")
        self._delete = float(delete_cost)
        self._insert = float(insert_cost)
        self._rename = float(rename_cost)

    def delete(self, label: object) -> float:
        return self._delete

    def insert(self, label: object) -> float:
        return self._insert

    def rename(self, label_from: object, label_to: object) -> float:
        return 0.0 if label_from == label_to else self._rename

    def min_operation_cost(self) -> Optional[float]:
        return min(self._delete, self._insert, self._rename)

    def is_metric(self) -> bool:
        # Symmetry needs delete == insert; the only non-trivial triangle
        # constraint is rename(a, b) ≤ delete(a) + insert(b) (rename via
        # delete + insert) — all other combinations hold for any
        # non-negative constants.
        return (
            self._delete == self._insert
            and self._rename <= self._delete + self._insert
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WeightedCostModel(delete={self._delete}, insert={self._insert}, "
            f"rename={self._rename})"
        )


class PerLabelCostModel(CostModel):
    """Costs looked up per label, with configurable defaults.

    Useful for XML workloads where, for example, structural wrapper elements
    should be cheap to add or remove while content-bearing elements are
    expensive to touch.
    """

    def __init__(
        self,
        delete_costs: Optional[Mapping[object, float]] = None,
        insert_costs: Optional[Mapping[object, float]] = None,
        default_delete: float = 1.0,
        default_insert: float = 1.0,
        rename_cost: float = 1.0,
    ) -> None:
        self._delete_costs: Dict[object, float] = dict(delete_costs or {})
        self._insert_costs: Dict[object, float] = dict(insert_costs or {})
        self._default_delete = float(default_delete)
        self._default_insert = float(default_insert)
        self._rename = float(rename_cost)
        if (
            min([self._default_delete, self._default_insert, self._rename], default=0) < 0
            or any(c < 0 for c in self._delete_costs.values())
            or any(c < 0 for c in self._insert_costs.values())
        ):
            raise CostModelError("costs must be non-negative")

    def delete(self, label: object) -> float:
        return self._delete_costs.get(label, self._default_delete)

    def insert(self, label: object) -> float:
        return self._insert_costs.get(label, self._default_insert)

    def rename(self, label_from: object, label_to: object) -> float:
        return 0.0 if label_from == label_to else self._rename

    def min_operation_cost(self) -> Optional[float]:
        return min(
            [self._default_delete, self._default_insert, self._rename]
            + list(self._delete_costs.values())
            + list(self._insert_costs.values())
        )

    def is_metric(self) -> bool:
        # Conservative: symmetry needs identical delete/insert tables, and
        # with per-label deletion costs the triangle inequality needs both
        # rename ≤ cheapest delete + cheapest insert (rename via ε) and
        # max delete ≤ rename + min delete (delete via rename + delete).
        if (
            self._delete_costs != self._insert_costs
            or self._default_delete != self._default_insert
        ):
            return False
        costs = [self._default_delete] + list(self._delete_costs.values())
        lo, hi = min(costs), max(costs)
        return self._rename <= 2 * lo and hi <= self._rename + lo


class StringRenameCostModel(CostModel):
    """Rename cost proportional to the normalized edit distance of the labels.

    Delete and insert cost 1; renaming costs
    ``levenshtein(a, b) / max(len(a), len(b))`` so that renaming ``"author"``
    to ``"authors"`` is much cheaper than renaming it to ``"price"``.  Labels
    are converted with ``str`` before comparison.
    """

    def delete(self, label: object) -> float:
        return 1.0

    def insert(self, label: object) -> float:
        return 1.0

    def rename(self, label_from: object, label_to: object) -> float:
        a, b = str(label_from), str(label_to)
        if a == b:
            return 0.0
        longest = max(len(a), len(b))
        if longest == 0:
            return 0.0
        return _levenshtein(a, b) / longest

    def min_operation_cost(self) -> Optional[float]:
        # Renames can be arbitrarily cheap (1 / max label length), so the only
        # provable per-operation infimum is 0 — which correctly disables
        # operation-count lower-bound pruning for this model.
        return 0.0

    def is_metric(self) -> bool:
        # Length-normalized edit distance (ld / max length) violates the
        # triangle inequality on some label triples, so the induced TED is
        # not provably a metric; metric-index pruning must not engage.
        return False


class CallableCostModel(CostModel):
    """Adapter turning three plain functions into a :class:`CostModel`."""

    def __init__(
        self,
        delete: Callable[[object], float],
        insert: Callable[[object], float],
        rename: Callable[[object, object], float],
    ) -> None:
        self._delete_fn = delete
        self._insert_fn = insert
        self._rename_fn = rename

    def delete(self, label: object) -> float:
        return self._delete_fn(label)

    def insert(self, label: object) -> float:
        return self._insert_fn(label)

    def rename(self, label_from: object, label_to: object) -> float:
        return self._rename_fn(label_from, label_to)


def _levenshtein(a: str, b: str) -> int:
    """Plain O(|a|·|b|) Levenshtein distance (module-private helper)."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (0 if ch_a == ch_b else 1),
                )
            )
        previous = current
    return previous[-1]


#: Shared default instance of the unit cost model.
UNIT_COST = UnitCostModel()
