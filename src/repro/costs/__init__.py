"""Cost models for node edit operations."""

from .model import (
    UNIT_COST,
    CallableCostModel,
    CostModel,
    PerLabelCostModel,
    StringRenameCostModel,
    UnitCostModel,
    WeightedCostModel,
)

__all__ = [
    "CostModel",
    "UnitCostModel",
    "WeightedCostModel",
    "PerLabelCostModel",
    "StringRenameCostModel",
    "CallableCostModel",
    "UNIT_COST",
]
