"""A deadline-governed TED serving layer on the stdlib asyncio stack.

The library answers one call at a time; a service answers a *stream* of
requests against corpora whose expensive artifacts — the label interner,
filter profiles, the batch-kernel pack, the metric index — should be paid
once, not per request.  :class:`RtedService` registers
:class:`~repro.join.corpus.TreeCorpus` objects at startup and serves:

``POST /distance``
    ``{"tree_a": "{a{b}}", "tree_b": "{a{c}}", "algorithm": "rted",
    "cutoff": 2.0, "deadline": 0.5}`` → the exact (or τ-bounded) distance.
``POST /knn`` / ``POST /range``
    One-vs-corpus retrieval through the registered corpus's cached
    :class:`~repro.join.query.QueryEngine`.  A deadline expiry returns the
    best results found so far with ``"partial": true`` — explicitly marked,
    never a silently truncated exact answer.
``POST /join``
    The corpus similarity self/cross join, with the full
    :class:`~repro.join.cascade.JoinStats` (including the PR 7 recovery
    telemetry) in the response.
``POST /corpora`` / ``POST /corpora/{name}/trees`` / ``DELETE /corpora/{name}/trees/{id}``
    Corpus management over *live* corpora (PR 10): create a named corpus,
    append trees, or remove one tree by its current dense id.  Mutations go
    through :meth:`TreeCorpus.add_trees` / :meth:`TreeCorpus.remove_trees`,
    so the per-tree profiles and inverted indexes update incrementally and
    the corpus **epoch** advances; every response reports the new
    ``size``/``epoch``.  Cached engines notice the drift through their
    pinned snapshots (see :mod:`repro.join.query`) — no restart needed.
``GET /healthz`` / ``GET /readyz`` / ``GET /stats``
    Liveness (always 200 while the process runs), readiness (503 once
    draining), and the service counters plus the last query/join stats as
    JSON.  ``/stats`` reports each corpus's size, epoch, the engine's
    pinned snapshot epoch, the mutation ledger, and the pair-cache
    hit/miss/eviction counters.

**Epoch-keyed pair caching.**  ``POST /distance`` with ``{"corpus": ...,
"i": 3, "j": 7}`` computes the distance between two *registered* trees and
memoizes it in a per-corpus LRU keyed by ``(epoch, i, j, algorithm,
cost model, cutoff)``.  Because the corpus epoch is part of the key, a
mutation invalidates every stale entry implicitly — there is no explicit
flush, and a hit can never serve a distance computed against a superseded
tree set.

**Deadlines end to end.**  Every compute request runs under a
:class:`~repro.runtime.Deadline` combining its per-request budget (the
``deadline`` field, clamped to ``max_deadline``, defaulting to
``default_deadline``) with the service's drain :class:`CancelToken`.  The
deadline travels through ``compute(deadline=)`` into the row loops of the
kernels, so an over-budget request returns ``504`` within one check
interval of expiry instead of hanging — and the worker pool stays healthy,
because cancellation is cooperative (no process is killed on the serial
path; the supervised fan-out reuses its stall-teardown).  Requests without
a deadline run the library code bit-identically to a direct call: the
ambient deadline checks read state only and never touch the DP arithmetic.

**Admission control.**  Compute requests pass a bounded admission gate:
at most ``max_inflight`` run concurrently (worker threads via
``asyncio.to_thread``) and at most ``max_queue`` more may wait on the
semaphore.  Anything beyond that is *shed* with ``503`` and a
``Retry-After`` header before any compute work starts — the queue can
never grow without bound, so overload degrades into fast rejections
rather than memory growth and collapse.  Request bodies are capped
(``RTED_SERVICE_MAX_BODY``) for the same reason.

**Graceful drain.**  ``SIGTERM`` (or :meth:`RtedService.drain`) stops the
listener, fails readiness, waits up to ``drain_grace`` seconds for
in-flight requests to finish, then cancels the drain token — which expires
every in-flight deadline, so stragglers return ``504`` promptly — and
finally reaps any orphaned shared-memory blocks
(:func:`~repro.join.shared.reap_stale`).  ``rted serve`` then exits 0.

Per-corpus compute (knn/range/join) serializes on a per-corpus lock —
the cached engine's amortized workspace and the corpus's lazily built
artifacts are not thread-safe — while ``/distance`` requests use fresh
per-call contexts and scale across the worker threads.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..api import compute, parse_tree
from ..exceptions import ComputeTimeoutError, ReproError
from ..join.corpus import TreeCorpus
from ..join.query import QueryEngine
from ..runtime import CancelToken, Deadline, env_int

#: Cap on a request body (bytes); larger requests get 413.  Bounded bodies
#: plus the bounded admission queue keep worst-case service memory linear
#: in configuration, not in offered load.
MAX_BODY_BYTES = env_int("RTED_SERVICE_MAX_BODY", 8 << 20, minimum=1024)

_JSON_HEADERS = "Content-Type: application/json\r\nConnection: close\r\n"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """An error with a definite HTTP status (raised during request handling)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class ServiceConfig:
    """Tunables of one :class:`RtedService` instance."""

    host: str = "127.0.0.1"
    port: int = 0
    """``0`` binds an ephemeral port (read it back from ``service.port``)."""

    max_inflight: int = 4
    """Compute requests running concurrently (worker threads)."""

    max_queue: int = 16
    """Admitted requests allowed to wait for a worker; beyond
    ``max_inflight + max_queue`` the service sheds with 503."""

    default_deadline: Optional[float] = None
    """Budget (seconds) applied to requests that set none; ``None`` = no
    time limit (the drain token still cancels them)."""

    max_deadline: Optional[float] = None
    """Upper clamp on client-requested deadlines."""

    retry_after: float = 1.0
    """Value of the ``Retry-After`` header on shed responses."""

    drain_grace: float = 5.0
    """Seconds drain waits for in-flight work before cancelling it."""

    pair_cache_size: int = 1024
    """Capacity of each corpus's epoch-keyed pair-distance LRU cache
    (``0`` disables caching)."""


@dataclass
class ServiceCounters:
    """Monotonic service counters, exposed verbatim by ``GET /stats``."""

    requests: int = 0
    served: int = 0
    shed: int = 0
    timeouts: int = 0
    client_errors: int = 0
    server_errors: int = 0
    partial_results: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "served": self.served,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "client_errors": self.client_errors,
            "server_errors": self.server_errors,
            "partial_results": self.partial_results,
        }


class PairResultCache:
    """Per-corpus LRU cache of pair-distance response bodies.

    Keys include the corpus **epoch** (plus tree ids, algorithm, cost
    model, cutoff), so entries computed against a superseded tree set can
    never be served after a mutation — the epoch bump orphans them and the
    LRU sweep evicts them as capacity recycles.  Counters are monotonic
    and surfaced per corpus by ``GET /stats``.  Access is serialized by
    the owning corpus's lock, so no internal locking is needed.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        self.capacity = max(0, int(capacity))
        self._entries: "OrderedDict[tuple, Dict[str, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> Optional[Dict[str, object]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, value: Dict[str, object]) -> None:
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def counters(self) -> Dict[str, int]:
        return {
            "pair_cache_hits": self.hits,
            "pair_cache_misses": self.misses,
            "pair_cache_evictions": self.evictions,
            "pair_cache_entries": len(self._entries),
        }


class RtedService:
    """The serving layer: registered corpora + the asyncio HTTP front end.

    ``corpora`` maps names (the ``"corpus"`` field of query requests) to
    :class:`TreeCorpus` objects.  Each gets one cached
    :class:`QueryEngine`, so the interner, profiles, pack and metric index
    are built once and amortized across the request stream.  The instance
    is fully testable in-process: ``await service.start()`` with
    ``port=0``, issue requests against ``service.port``, then
    ``await service.drain()``.
    """

    def __init__(
        self,
        corpora: Dict[str, TreeCorpus],
        config: Optional[ServiceConfig] = None,
        algorithm: str = "rted",
        engine: Optional[str] = None,
        workers: int = 1,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.algorithm = algorithm
        self.engine = engine
        self.workers = workers
        self.corpora = dict(corpora)
        self._engines: Dict[str, QueryEngine] = {
            name: QueryEngine(
                corpus, algorithm=algorithm, engine=engine, workers=workers
            )
            for name, corpus in self.corpora.items()
        }
        self._locks: Dict[str, threading.Lock] = {
            name: threading.Lock() for name in self.corpora
        }
        self._pair_caches: Dict[str, PairResultCache] = {
            name: PairResultCache(self.config.pair_cache_size)
            for name in self.corpora
        }
        # Guards registry *shape* changes (corpus creation): the per-corpus
        # locks serialize work on one corpus, this one serializes adding
        # entries to the four parallel dicts.
        self._registry_lock = threading.Lock()
        self.counters = ServiceCounters()
        self.last_query_stats: Optional[Dict[str, object]] = None
        self.last_join_stats: Optional[Dict[str, object]] = None
        self._drain_token = CancelToken()
        self._draining = False
        self._admitted = 0
        self._inflight = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listener (idempotent start is an error by design)."""
        if self._server is not None:
            raise ReproError("service already started")
        self._semaphore = asyncio.Semaphore(self.config.max_inflight)
        # A dedicated pool sized to the admission bound: compute never
        # contends with (or starves under) other users of the event loop's
        # default executor, and thread count is capped by configuration.
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_inflight, thread_name_prefix="rted-compute"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            raise ReproError("service not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ReproError("service not started")
        await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish or cancel, clean up.

        The sequence the ISSUE specifies: readiness fails immediately (new
        work is rejected), the listener closes, in-flight requests get
        ``drain_grace`` seconds to finish on their own budgets, whatever
        remains is cancelled through the shared token (each in-flight
        deadline expires, so the cooperative checks surface ``504`` within
        one check interval), and orphaned shared-memory blocks are reaped.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        grace_until = time.monotonic() + self.config.drain_grace
        while self._admitted > 0 and time.monotonic() < grace_until:
            await asyncio.sleep(0.02)
        if self._admitted > 0:
            self._drain_token.cancel()
        while self._admitted > 0:
            await asyncio.sleep(0.02)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        # In-flight supervised fan-outs unlink their shm exports on the way
        # out; this sweep catches blocks orphaned by killed workers.
        from ..join.shared import reap_stale

        await asyncio.to_thread(reap_stale)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body = await self._handle_request(reader)
        except _HttpError as exc:
            status, body = exc.status, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self.counters.server_errors += 1
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            payload = json.dumps(body).encode("utf-8")
            extra = ""
            if status == 503 and body.get("retry_after") is not None:
                extra = f"Retry-After: {body['retry_after']:g}\r\n"
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
                f"{_JSON_HEADERS}{extra}Content-Length: {len(payload)}\r\n\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, object]]:
        method, path, headers = await self._read_head(reader)
        self.counters.requests += 1
        if path in ("/healthz", "/readyz", "/stats"):
            if method != "GET":
                raise _HttpError(405, f"{path} expects GET")
            return self._handle_control(path)
        if path in ("/distance", "/knn", "/range", "/join"):
            if method != "POST":
                raise _HttpError(405, f"{path} expects POST")
            return await self._handle_compute(path, reader, headers)
        if path == "/corpora":
            if method != "POST":
                raise _HttpError(405, "/corpora expects POST")
            return await self._handle_compute(("corpora:create",), reader, headers)
        if path.startswith("/corpora/"):
            parts = path[1:].split("/")
            if len(parts) == 3 and parts[2] == "trees":
                if method != "POST":
                    raise _HttpError(405, f"{path} expects POST")
                return await self._handle_compute(
                    ("corpora:add", parts[1]), reader, headers
                )
            if len(parts) == 4 and parts[2] == "trees":
                if method != "DELETE":
                    raise _HttpError(405, f"{path} expects DELETE")
                return await self._handle_compute(
                    ("corpora:remove", parts[1], parts[3]),
                    reader,
                    headers,
                    needs_body=False,
                )
        raise _HttpError(404, f"unknown path {path}")

    async def _read_head(self, reader: asyncio.StreamReader):
        try:
            raw = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=30.0)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
        ):
            raise _HttpError(400, "malformed or truncated request head")
        head = raw.decode("latin-1")
        request_line, _, header_block = head.partition("\r\n")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in header_block.split("\r\n"):
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _read_body(self, reader, headers) -> Dict[str, object]:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length <= 0:
            raise _HttpError(400, "compute endpoints require a JSON body")
        try:
            raw = await asyncio.wait_for(reader.readexactly(length), timeout=30.0)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            raise _HttpError(400, "truncated request body")
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload

    # ------------------------------------------------------------------ #
    # Control endpoints
    # ------------------------------------------------------------------ #
    def _handle_control(self, path: str) -> Tuple[int, Dict[str, object]]:
        if path == "/healthz":
            return 200, {"status": "alive"}
        if path == "/readyz":
            if self._draining:
                return 503, {"status": "draining"}
            return 200, {"status": "ready"}
        return 200, {
            "counters": self.counters.as_dict(),
            "inflight": self._inflight,
            "admitted": self._admitted,
            "draining": self._draining,
            "corpora": {name: self._corpus_stats(name) for name in self.corpora},
            "config": {
                "max_inflight": self.config.max_inflight,
                "max_queue": self.config.max_queue,
                "default_deadline": self.config.default_deadline,
                "max_deadline": self.config.max_deadline,
            },
            "last_query_stats": self.last_query_stats,
            "last_join_stats": self.last_join_stats,
        }

    def _corpus_stats(self, name: str) -> Dict[str, object]:
        """One corpus's ``/stats`` entry: size, epochs, ledger, cache counters."""
        corpus = self.corpora[name]
        engine = self._engines.get(name)
        info: Dict[str, object] = {
            "size": len(corpus),
            "epoch": getattr(corpus, "epoch", 0),
            "snapshot_epoch": getattr(engine, "snapshot_epoch", None),
        }
        ledger = getattr(corpus, "mutation_counters", None)
        if callable(ledger):
            info.update(ledger())
        cache = self._pair_caches.get(name)
        if cache is not None:
            info.update(cache.counters())
        return info

    # ------------------------------------------------------------------ #
    # Compute endpoints
    # ------------------------------------------------------------------ #
    async def _handle_compute(
        self, op: Union[str, tuple], reader, headers, needs_body: bool = True
    ) -> Tuple[int, Dict[str, object]]:
        if self._draining:
            self.counters.shed += 1
            return 503, {"error": "draining", "retry_after": None}
        if self._admitted >= self.config.max_inflight + self.config.max_queue:
            # Load shedding: the admission budget is spent, so reject
            # *before* reading the body or touching a worker — overload
            # turns into fast 503s, never an unbounded queue.
            self.counters.shed += 1
            return 503, {
                "error": "service overloaded",
                "retry_after": self.config.retry_after,
            }
        # Reserve the slot *synchronously* — no await between the admission
        # check above and this increment, so a simultaneous burst of
        # connections cannot all pass the check and overrun the bound.
        self._admitted += 1
        try:
            payload: Dict[str, object] = {}
            if needs_body:
                payload = await self._read_body(reader, headers)
            assert self._semaphore is not None
            async with self._semaphore:
                self._inflight += 1
                try:
                    deadline = self._request_deadline(payload)
                    result = await asyncio.get_running_loop().run_in_executor(
                        self._executor, self._compute, op, payload, deadline
                    )
                finally:
                    self._inflight -= 1
        except ComputeTimeoutError as exc:
            self.counters.timeouts += 1
            return 504, {"error": str(exc), "timeout": True}
        except _HttpError:
            self.counters.client_errors += 1
            raise
        except ReproError as exc:
            self.counters.client_errors += 1
            return 400, {"error": str(exc)}
        finally:
            self._admitted -= 1
        self.counters.served += 1
        return 200, result

    def _request_deadline(self, payload: Dict[str, object]) -> Deadline:
        timeout = payload.get("deadline", self.config.default_deadline)
        if timeout is not None:
            if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
                raise _HttpError(400, "deadline must be a number of seconds")
            timeout = float(timeout)
            if timeout <= 0:
                raise _HttpError(400, "deadline must be positive")
            if self.config.max_deadline is not None:
                timeout = min(timeout, self.config.max_deadline)
        # Every request carries the drain token, so graceful shutdown can
        # cut short even requests that asked for no time limit.
        return Deadline(timeout, token=self._drain_token)

    def _corpus_engine(self, payload) -> Tuple[str, QueryEngine]:
        name = payload.get("corpus", "default")
        if not isinstance(name, str) or name not in self._engines:
            raise _HttpError(
                400,
                f"unknown corpus {name!r} (registered: {sorted(self._engines)})",
            )
        return name, self._engines[name]

    def _field(self, payload, key, kinds, desc):
        value = payload.get(key)
        if isinstance(value, bool) or not isinstance(value, kinds):
            raise _HttpError(400, f"field {key!r} must be {desc}")
        return value

    def _compute(self, op: Union[str, tuple], payload, deadline: Deadline):
        """One compute request, run inside a worker thread."""
        if isinstance(op, tuple):
            if op[0] == "corpora:create":
                return self._do_corpus_create(payload)
            if op[0] == "corpora:add":
                return self._do_corpus_add(op[1], payload)
            return self._do_corpus_remove(op[1], op[2])
        if op == "/distance":
            return self._do_distance(payload, deadline)
        if op == "/knn":
            return self._do_knn(payload, deadline)
        if op == "/range":
            return self._do_range(payload, deadline)
        return self._do_join(payload, deadline)

    # ------------------------------------------------------------------ #
    # Corpus management (live corpora)
    # ------------------------------------------------------------------ #
    def _parse_tree_list(self, payload, key: str):
        value = payload.get(key)
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise _HttpError(400, f"field {key!r} must be a list of tree strings")
        return [parse_tree(text) for text in value]

    def _do_corpus_create(self, payload):
        name = self._field(payload, "name", str, "a corpus name string")
        trees = self._parse_tree_list(payload, "trees") if "trees" in payload else []
        with self._registry_lock:
            if name in self.corpora:
                raise _HttpError(409, f"corpus {name!r} already exists")
            corpus = TreeCorpus(trees)
            self.corpora[name] = corpus
            self._engines[name] = QueryEngine(
                corpus,
                algorithm=self.algorithm,
                engine=self.engine,
                workers=self.workers,
            )
            self._locks[name] = threading.Lock()
            self._pair_caches[name] = PairResultCache(self.config.pair_cache_size)
        return {"name": name, "size": len(corpus), "epoch": corpus.epoch}

    def _mutable_corpus(self, name: str) -> TreeCorpus:
        if name not in self.corpora:
            raise _HttpError(
                400, f"unknown corpus {name!r} (registered: {sorted(self.corpora)})"
            )
        return self.corpora[name]

    def _do_corpus_add(self, name: str, payload):
        corpus = self._mutable_corpus(name)
        trees = self._parse_tree_list(payload, "trees")
        with self._locks[name]:
            added = corpus.add_trees(trees)
            return {"added": added, "size": len(corpus), "epoch": corpus.epoch}

    def _do_corpus_remove(self, name: str, id_text: str):
        corpus = self._mutable_corpus(name)
        try:
            index = int(id_text)
        except ValueError:
            raise _HttpError(400, f"tree id must be an integer, got {id_text!r}")
        with self._locks[name]:
            # An out-of-range index raises CorpusError, which the compute
            # wrapper maps to 400 like every other ReproError.
            corpus.remove_trees([index])
            return {"removed": index, "size": len(corpus), "epoch": corpus.epoch}

    def _do_distance(self, payload, deadline: Deadline):
        if "i" in payload or "j" in payload:
            return self._do_corpus_distance(payload, deadline)
        tree_a = parse_tree(self._field(payload, "tree_a", str, "a tree string"))
        tree_b = parse_tree(self._field(payload, "tree_b", str, "a tree string"))
        cutoff = payload.get("cutoff")
        result = compute(
            tree_a,
            tree_b,
            algorithm=payload.get("algorithm", self.algorithm),
            engine=payload.get("engine", self.engine),
            cutoff=cutoff,
            deadline=deadline,
        )
        body: Dict[str, object] = {
            "algorithm": result.algorithm,
            "subproblems": result.subproblems,
        }
        if result.bounded:
            body.update(bounded=True, lower_bound=result.lower_bound, cutoff=result.cutoff)
        else:
            body["distance"] = result.distance
        return body

    def _do_corpus_distance(self, payload, deadline: Deadline):
        """Distance between two registered trees, memoized per epoch.

        The cache key is ``(epoch, i, j, algorithm, cost model, cutoff)``:
        the epoch component makes mutation invalidation implicit (a stale
        entry's key can never be constructed again), and the cost-model
        component is the literal ``"unit"`` until the endpoint grows a
        cost-model field — kept in the key now so adding one later cannot
        silently alias entries.
        """
        name, _ = self._corpus_engine(payload)
        i = self._field(payload, "i", int, "an integer tree id")
        j = self._field(payload, "j", int, "an integer tree id")
        algorithm = payload.get("algorithm", self.algorithm)
        cutoff = payload.get("cutoff")
        cache = self._pair_caches[name]
        with self._locks[name]:
            corpus = self.corpora[name]
            n = len(corpus)
            if not (0 <= i < n) or not (0 <= j < n):
                raise _HttpError(
                    400, f"tree ids must be in [0, {n}) for corpus {name!r}"
                )
            epoch = corpus.epoch
            key = (epoch, i, j, str(algorithm), "unit", cutoff)
            cached = cache.get(key)
            if cached is not None:
                return {**cached, "cached": True, "epoch": epoch}
            result = compute(
                corpus.trees[i],
                corpus.trees[j],
                algorithm=algorithm,
                engine=payload.get("engine", self.engine),
                cutoff=cutoff,
                deadline=deadline,
            )
            body: Dict[str, object] = {
                "algorithm": result.algorithm,
                "subproblems": result.subproblems,
            }
            if result.bounded:
                body.update(
                    bounded=True, lower_bound=result.lower_bound, cutoff=result.cutoff
                )
            else:
                body["distance"] = result.distance
            cache.put(key, body)
            return {**body, "cached": False, "epoch": epoch}

    def _do_knn(self, payload, deadline: Deadline):
        name, engine = self._corpus_engine(payload)
        query = parse_tree(self._field(payload, "query", str, "a tree string"))
        k = self._field(payload, "k", int, "an integer")
        with self._locks[name]:
            result = engine.knn(query, k, deadline=deadline)
        return self._query_body(result)

    def _do_range(self, payload, deadline: Deadline):
        name, engine = self._corpus_engine(payload)
        query = parse_tree(self._field(payload, "query", str, "a tree string"))
        threshold = self._field(payload, "threshold", (int, float), "a number")
        with self._locks[name]:
            result = engine.range_query(query, float(threshold), deadline=deadline)
        return self._query_body(result)

    def _query_body(self, result) -> Dict[str, object]:
        stats = result.stats.as_dict()
        self.last_query_stats = stats
        if result.stats.partial:
            self.counters.partial_results += 1
        return {
            "matches": [[j, d] for j, d in result.matches],
            "partial": result.stats.partial,
            "stats": stats,
        }

    def _do_join(self, payload, deadline: Deadline):
        from ..join.batch import batch_similarity_join

        name, _ = self._corpus_engine(payload)
        corpus_b = None
        if "corpus_b" in payload:
            other = payload["corpus_b"]
            if not isinstance(other, str) or other not in self.corpora:
                raise _HttpError(400, f"unknown corpus_b {other!r}")
            corpus_b = self.corpora[other]
        threshold = self._field(payload, "threshold", (int, float), "a number")
        with self._locks[name]:
            result = batch_similarity_join(
                self.corpora[name],
                float(threshold),
                corpus_b=corpus_b,
                algorithm=payload.get("algorithm", self.algorithm),
                engine=payload.get("engine", self.engine),
                workers=self.workers,
                deadline=deadline,
            )
        stats = result.stats.as_dict()
        self.last_join_stats = stats
        return {
            "matches": [[i, j, d] for i, j, d in result.matches],
            "threshold": result.threshold,
            "stats": stats,
        }


# --------------------------------------------------------------------------- #
# The blocking entry point behind ``rted serve``
# --------------------------------------------------------------------------- #
def run_server(
    corpora: Dict[str, TreeCorpus],
    config: ServiceConfig,
    algorithm: str = "rted",
    engine: Optional[str] = None,
    workers: int = 1,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Prints one ``listening on HOST:PORT`` line to stderr once ready (the
    CI smoke leg waits for it), and exits 0 after a clean drain.
    """

    async def _main() -> int:
        service = RtedService(
            corpora, config, algorithm=algorithm, engine=engine, workers=workers
        )
        await service.start()
        print(
            f"rted serve: listening on {config.host}:{service.port} "
            f"(corpora: {', '.join(sorted(corpora)) or 'none'})",
            file=sys.stderr,
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("rted serve: draining", file=sys.stderr, flush=True)
        await service.drain()
        print("rted serve: drained, exiting", file=sys.stderr, flush=True)
        return 0

    return asyncio.run(_main())
