"""RTED as a service: the deadline-governed HTTP serving layer.

See :mod:`repro.service.server` for the architecture (admission control,
per-request deadlines, graceful drain) and ``DESIGN.md`` for the quickstart.
"""

from .server import RtedService, ServiceConfig, run_server

__all__ = ["RtedService", "ServiceConfig", "run_server"]
