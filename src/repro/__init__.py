"""repro — a reproduction of "RTED: A Robust Algorithm for the Tree Edit Distance".

The package implements the RTED algorithm of Pawlik & Augsten (PVLDB 2011)
together with the competitors it is evaluated against (Zhang & Shasha, Klein,
Demaine et al.), the GTED framework and optimal-strategy computation that
underpin it, subproblem-counting tools, distance bounds, similarity joins,
dataset generators, and harnesses that regenerate every figure and table of
the paper's experimental evaluation.

Quick start
-----------
>>> import repro
>>> t1 = repro.parse_tree("{a{b}{c{d}}}")
>>> t2 = repro.parse_tree("{a{c{d}}{e}}")
>>> repro.tree_edit_distance(t1, t2)
2.0
>>> repro.compute(t1, t2, algorithm="rted").subproblems > 0
True
"""

from .api import (
    compare_algorithms,
    compute,
    edit_mapping,
    edit_script,
    knn,
    parse_tree,
    range_query,
    similarity_join,
    tree_edit_distance,
    tree_to_bracket,
)
from .algorithms import (
    GTED,
    RTED,
    BoundedResult,
    DemaineTED,
    KleinTED,
    SimpleTED,
    TEDAlgorithm,
    TEDResult,
    ZhangShashaRightTED,
    ZhangShashaTED,
    available_algorithms,
    make_algorithm,
    optimal_strategy,
)
from .algorithms.workspace import LabelInterner, TedWorkspace
from .costs import (
    CostModel,
    PerLabelCostModel,
    StringRenameCostModel,
    UnitCostModel,
    WeightedCostModel,
)
from .exceptions import (
    CostModelError,
    InvalidNodeError,
    ParseError,
    ReproError,
    StrategyError,
    TreeConstructionError,
    UnknownAlgorithmError,
)
from .join import (
    BatchJoinResult,
    JoinStats,
    QueryEngine,
    QueryResult,
    TreeCorpus,
    VPTree,
    batch_distances,
)
from .trees import Node, Tree, tree_from_nested, tree_from_parent_array

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # High-level API
    "tree_edit_distance",
    "compute",
    "edit_mapping",
    "edit_script",
    "compare_algorithms",
    "parse_tree",
    "tree_to_bracket",
    # Batch joins and queries
    "similarity_join",
    "knn",
    "range_query",
    "QueryEngine",
    "QueryResult",
    "VPTree",
    "TreeCorpus",
    "BatchJoinResult",
    "JoinStats",
    "batch_distances",
    "TedWorkspace",
    "LabelInterner",
    # Trees
    "Node",
    "Tree",
    "tree_from_nested",
    "tree_from_parent_array",
    # Algorithms
    "TEDAlgorithm",
    "TEDResult",
    "BoundedResult",
    "RTED",
    "GTED",
    "ZhangShashaTED",
    "ZhangShashaRightTED",
    "KleinTED",
    "DemaineTED",
    "SimpleTED",
    "optimal_strategy",
    "make_algorithm",
    "available_algorithms",
    # Cost models
    "CostModel",
    "UnitCostModel",
    "WeightedCostModel",
    "PerLabelCostModel",
    "StringRenameCostModel",
    # Exceptions
    "ReproError",
    "ParseError",
    "TreeConstructionError",
    "InvalidNodeError",
    "UnknownAlgorithmError",
    "StrategyError",
    "CostModelError",
]
