"""High-level public API.

Most applications only need the functions in this module:

>>> from repro import tree_edit_distance, parse_tree
>>> t1 = parse_tree("{a{b}{c}}")
>>> t2 = parse_tree("{a{b}{d}}")
>>> tree_edit_distance(t1, t2)
1.0

The heavy lifting lives in the sub-packages (``repro.algorithms``,
``repro.counting``, ``repro.join``, ...) whose entry points are re-exported
from the package root.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Union

from .algorithms.base import BoundedResult, TEDResult, resolve_engine
from .algorithms.edit_mapping import EditMapping, EditOperation, compute_edit_mapping
from .algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from .costs import CostModel
from .exceptions import ParseError
from .io.bracket import parse_bracket, to_bracket
from .io.newick import parse_newick
from .io.xml import xml_to_tree
from .join.batch import BatchJoinResult, batch_similarity_join
from .join.cascade import JoinStats
from .join.corpus import TreeCorpus
from .join.query import QueryResult, query_engine
from .runtime import as_deadline, deadline_scope
from .trees.node import Node
from .trees.tree import Tree

TreeLike = Union[Tree, Node, str]


def parse_tree(source: TreeLike, fmt: Optional[str] = None) -> Tree:
    """Convert ``source`` into an indexed :class:`Tree`.

    ``source`` may already be a :class:`Tree` (returned as-is), a
    :class:`Node` (indexed), or a string.  For strings the format is either
    given explicitly (``"bracket"``, ``"newick"``, ``"xml"``) or guessed from
    the first non-blank character: ``{`` → bracket, ``<`` → XML, ``(`` →
    Newick.
    """
    if isinstance(source, Tree):
        return source
    if isinstance(source, Node):
        return Tree(source)
    if not isinstance(source, str):
        raise ParseError(f"cannot build a tree from {type(source).__name__}")

    text = source.strip()
    if fmt is None:
        if text.startswith("{"):
            fmt = "bracket"
        elif text.startswith("<"):
            fmt = "xml"
        elif text.startswith("("):
            fmt = "newick"
        else:
            fmt = "bracket"

    fmt = fmt.lower()
    if fmt == "bracket":
        return parse_bracket(text)
    if fmt == "newick":
        return parse_newick(text)
    if fmt == "xml":
        return xml_to_tree(text)
    raise ParseError(f"unknown tree format {fmt!r}; expected 'bracket', 'newick' or 'xml'")


def tree_edit_distance(
    tree_f: TreeLike,
    tree_g: TreeLike,
    algorithm: str = "rted",
    cost_model: Optional[CostModel] = None,
    engine: Optional[str] = None,
    cutoff: Optional[float] = None,
    deadline: Optional[float] = None,
) -> float:
    """The tree edit distance between two trees.

    Parameters
    ----------
    tree_f, tree_g:
        Trees (or parseable tree descriptions, see :func:`parse_tree`).
    algorithm:
        ``"rted"`` (default), ``"zhang-l"``, ``"zhang-r"``, ``"klein-h"``,
        ``"demaine-h"``, or any other registered name.
    cost_model:
        Optional :class:`~repro.costs.CostModel`; defaults to unit costs.
    engine:
        Execution engine: ``"auto"`` (default), ``"spf"`` (the iterative
        single-path executor ``auto`` resolves to for every GTED/RTED
        variant), ``"recursive"`` (the strategy-driven reference oracle,
        kept for cross-checking), or ``"native"`` (the ``spf`` executor
        with the optional compiled unit-cost kernels of
        :mod:`repro.algorithms.native` opted in — bit-identical, never
        selected by ``auto``, and silently falling back to the stock
        kernels when no compiled provider is available or
        ``RTED_NO_NATIVE=1`` is set).  The ``spf`` engine evaluates
        *every* strategy step — left, right and heavy paths — with
        array-based single-path functions: it is the fastest
        pure-Python/NumPy choice across algorithms and, being
        recursion-free, handles arbitrarily deep trees without touching
        the interpreter recursion limit.
    cutoff:
        Optional bound ``τ``: when given, the exact distance is returned if
        it is below ``τ`` (bit-identical to the unbounded computation) and
        ``math.inf`` otherwise — the computation aborts as soon as
        ``distance ≥ τ`` is proven, which is much cheaper than finishing it.
        Use :func:`compute` to obtain the proving lower bound instead of
        ``inf``.
    deadline:
        Optional compute budget in seconds (or a pre-built
        :class:`~repro.runtime.Deadline`).  The kernels test it
        cooperatively at row granularity and raise
        :class:`~repro.exceptions.ComputeTimeoutError` once it expires;
        runs that finish in time are bit-identical to deadline-free runs.

    Examples
    --------
    >>> from repro import tree_edit_distance
    >>> tree_edit_distance("{a{b}{c}}", "{a{b}{d}}", algorithm="zhang-l", engine="spf")
    1.0
    >>> tree_edit_distance("{a{b}{c}}", "{x{y{z}}}", cutoff=2.0)
    inf
    """
    result = compute(
        tree_f, tree_g, algorithm=algorithm, cost_model=cost_model, engine=engine,
        cutoff=cutoff, deadline=deadline,
    )
    if result.bounded:
        return math.inf
    return result.distance


def compute(
    tree_f: TreeLike,
    tree_g: TreeLike,
    algorithm: str = "rted",
    cost_model: Optional[CostModel] = None,
    engine: Optional[str] = None,
    cutoff: Optional[float] = None,
    deadline: Optional[float] = None,
) -> Union[TEDResult, BoundedResult]:
    """Full computation result (distance, subproblem count, timings).

    ``engine`` selects the execution backend exactly as in
    :func:`tree_edit_distance`; the engine actually used is reported in
    ``result.extra["engine"]`` for algorithms that support several.

    With ``cutoff=τ`` the computation is bounded: the returned object is the
    exact :class:`~repro.algorithms.base.TEDResult` when ``distance < τ``
    and a :class:`~repro.algorithms.base.BoundedResult` sentinel — carrying
    the lower bound that proves ``distance ≥ τ`` — otherwise.  Discriminate
    with ``result.bounded``.

    ``deadline`` (seconds or a :class:`~repro.runtime.Deadline`) arms the
    cooperative cancellation layer: the kernels check it amortized at row
    granularity and the call raises
    :class:`~repro.exceptions.ComputeTimeoutError` once the budget runs out.
    It is installed as the *ambient* deadline (:func:`repro.runtime.deadline_scope`)
    around the whole computation, so registered algorithms that predate the
    keyword still honor it through their instrumented kernels.
    """
    algo = make_algorithm(algorithm, engine=engine)
    f, g = parse_tree(tree_f), parse_tree(tree_g)
    with deadline_scope(as_deadline(deadline)):
        if cutoff is None:
            return algo.compute(f, g, cost_model=cost_model)
        return algo.compute(f, g, cost_model=cost_model, cutoff=cutoff)


def edit_mapping(
    tree_f: TreeLike, tree_g: TreeLike, cost_model: Optional[CostModel] = None
) -> EditMapping:
    """An optimal node alignment between the two trees.

    Both the distance tables and the backtrace are evaluated iteratively, so
    arbitrarily deep trees are handled at the default recursion limit — this
    is a production API path, like ``engine="auto"`` distances.
    """
    return compute_edit_mapping(parse_tree(tree_f), parse_tree(tree_g), cost_model=cost_model)


def edit_script(
    tree_f: TreeLike, tree_g: TreeLike, cost_model: Optional[CostModel] = None
) -> List[EditOperation]:
    """An optimal edit script (delete / insert / rename operations)."""
    from .algorithms.base import resolve_cost_model

    f = parse_tree(tree_f)
    g = parse_tree(tree_g)
    cm = resolve_cost_model(cost_model)
    mapping = compute_edit_mapping(f, g, cost_model=cm)
    return mapping.to_edit_script(f, g, cm)


def compare_algorithms(
    tree_f: TreeLike,
    tree_g: TreeLike,
    algorithms: Optional[Sequence[str]] = None,
    cost_model: Optional[CostModel] = None,
    engine: Optional[str] = None,
) -> Dict[str, TEDResult]:
    """Run several algorithms on the same pair and collect their results.

    Useful for reproducing the robustness comparison of the paper on a single
    pair of trees: the distances must all agree while the subproblem counts
    and runtimes differ.

    ``engine`` selects the execution backend for *every* compared algorithm,
    exactly as in :func:`compute` — e.g. ``engine="recursive"`` cross-checks
    the whole panel on the reference oracle.  The backend each algorithm
    actually resolved is reported in ``result.extra["engine"]`` (algorithms
    with a single dedicated implementation, like the Zhang–Shasha tables
    that ``zhang-l``/``zhang-r`` use for ``auto``, report the requested
    selector).  Names that do not support engine selection (e.g.
    ``"simple"``) raise for any non-``auto`` engine, as in
    :func:`make_algorithm`.
    """
    names = list(algorithms) if algorithms is not None else list(PAPER_ALGORITHMS)
    resolved = resolve_engine(engine)
    f = parse_tree(tree_f)
    g = parse_tree(tree_g)
    results: Dict[str, TEDResult] = {}
    for name in names:
        result = make_algorithm(name, engine=engine).compute(f, g, cost_model=cost_model)
        result.extra.setdefault("engine", resolved)
        results[name] = result
    return results


def similarity_join(
    collection_a: Sequence[TreeLike],
    threshold: float,
    collection_b: Optional[Sequence[TreeLike]] = None,
    algorithm: str = "rted",
    cost_model: Optional[CostModel] = None,
    engine: Optional[str] = None,
    use_cascade: bool = True,
    workers: int = 1,
    progress: Optional[Callable[[JoinStats], None]] = None,
    workspace: bool = True,
    bounded_verify: bool = True,
    batch_kernel: bool = True,
    **kwargs,
) -> BatchJoinResult:
    """Corpus-indexed similarity join: all pairs with ``TED < threshold``.

    ``collection_b=None`` performs a self join over ``collection_a`` (pairs
    ``i < j``).  Elements may be trees or parseable tree descriptions (see
    :func:`parse_tree`).  The join computes per-tree filter artifacts once,
    generates candidates from a binary-branch inverted index, prunes with
    cost-model-scaled lower bounds, accepts early via the top-down upper
    bound, and verifies the survivors exactly — optionally fanned out over
    ``workers`` processes.  Returns a
    :class:`~repro.join.batch.BatchJoinResult` whose ``stats`` field carries
    the per-stage :class:`~repro.join.cascade.JoinStats`.

    ``workspace`` (default on) runs the verification stage through the
    amortized execution layer — per-tree frames, interned label cost tables
    and pooled matrices shared across all verified pairs, plus the unit-cost
    small-pair fast path; distances are bit-identical to per-call contexts.
    Pass ``workspace=False`` to force fresh per-pair contexts.

    ``bounded_verify`` (default on) verifies survivors with ``cutoff=τ``,
    aborting each exact computation as soon as ``TED ≥ τ`` is proven; the
    match set and every reported distance are identical either way, and
    ``result.stats.aborted_early`` counts the verifications cut short.

    ``batch_kernel`` (default on) verifies small unit-cost pairs through
    the struct-of-arrays batch kernel — one vectorized (or, under
    ``engine="native"``, compiled) program per chunk instead of one
    interpreted run per pair; results are bit-identical, including
    subproblem counts.  In the ``workers > 1`` fan-out the corpus pack is
    exported once into ``multiprocessing.shared_memory`` and workers
    attach zero-copy (:mod:`repro.join.shared`).  Note a survivor set no
    larger than one chunk verifies serially regardless of ``workers``;
    ``result.stats.verify_workers`` records the count actually used.

    The ``workers > 1`` verification stage is *supervised*
    (:mod:`repro.join.supervisor`): crashed or hung workers are detected,
    failed chunks retried with capped backoff, and execution degrades down
    an exact-result ladder (shared-memory pack → local pack rebuild → no
    batch kernel → in-process serial) instead of aborting the join.  Pass
    ``policy=ExecutionPolicy(...)`` to tune retries and the hang timeout;
    the recovery telemetry lands in ``result.stats`` (``retried_chunks``,
    ``failed_workers``, ``degraded_to``, ``poisoned_pairs``).

    Examples
    --------
    >>> from repro import similarity_join
    >>> result = similarity_join(["{a{b}{c}}", "{a{b}{d}}", "{x{y{z}}}"], threshold=2.0)
    >>> result.match_set
    {(0, 1)}
    """
    trees_a = [parse_tree(tree) for tree in collection_a]
    trees_b = (
        [parse_tree(tree) for tree in collection_b] if collection_b is not None else None
    )
    return batch_similarity_join(
        trees_a,
        threshold,
        corpus_b=trees_b,
        algorithm=algorithm,
        cost_model=cost_model,
        engine=engine,
        use_cascade=use_cascade,
        workers=workers,
        progress=progress,
        workspace=workspace,
        bounded_verify=bounded_verify,
        batch_kernel=batch_kernel,
        **kwargs,
    )


def _query_corpus(collection) -> TreeCorpus:
    """Resolve a collection argument into a :class:`TreeCorpus`.

    Passing a prebuilt :class:`TreeCorpus` is the warm path: repeated
    queries against the same corpus object reuse the cached profiles,
    inverted indexes, batch-kernel pack and the lazily built metric index
    (engines are cached per corpus by :func:`repro.join.query.query_engine`).
    The corpus may be *live* — mutated via
    :meth:`~repro.join.corpus.TreeCorpus.add_trees` /
    :meth:`~repro.join.corpus.TreeCorpus.remove_trees` between calls — and
    results stay exact: the cached engine pins an epoch snapshot, answers
    over it plus an exactly-evaluated side list of newer trees, and rebuilds
    its metric index only past its staleness budget.  A plain sequence is
    parsed and wrapped fresh on every call.
    """
    if isinstance(collection, TreeCorpus):
        return collection
    return TreeCorpus([parse_tree(tree) for tree in collection])


def knn(
    query: TreeLike,
    corpus: Union[TreeCorpus, Sequence[TreeLike]],
    k: int,
    algorithm: str = "rted",
    cost_model: Optional[CostModel] = None,
    engine: Optional[str] = None,
    workers: int = 1,
    use_cascade: bool = True,
    use_metric_index: bool = True,
    deadline: Optional[float] = None,
    **kwargs,
) -> QueryResult:
    """The ``k`` corpus trees nearest to ``query`` (exact, ties by index).

    Runs the best-first metric-index search of
    :class:`~repro.join.query.QueryEngine` when the cost model is provably
    a metric, and a sound linear scan otherwise; either way the result is
    exactly the first ``k`` entries of the brute-force ``(distance, index)``
    ranking.  ``corpus`` may be a sequence of trees/parseable descriptions
    or a prebuilt :class:`~repro.join.corpus.TreeCorpus` — pass the corpus
    object to amortize indexes across a query stream; results reflect the
    corpus's *current* trees even after ``add_trees``/``remove_trees``
    mutations (exact, via the engine's snapshot + side-list machinery —
    ``result.stats.epoch``/``snapshot_epoch`` record what was queried
    against what).  Extra keyword
    arguments reach the :class:`QueryEngine` (``chunk_size``, ``leaf_size``,
    ``workspace``, ``batch_kernel``, ``policy``, ...).  ``deadline``
    (seconds or a :class:`~repro.runtime.Deadline`) is per *call*, not part
    of the cached engine: on expiry the best results examined so far come
    back with ``result.stats.partial = True``.

    Examples
    --------
    >>> from repro import knn
    >>> result = knn("{a{b}{c}}", ["{a{b}{c}{d}}", "{x{y}}", "{a{b}}"], k=2)
    >>> result.indices
    [0, 2]
    """
    engine_obj = query_engine(
        _query_corpus(corpus),
        algorithm=algorithm,
        cost_model=cost_model,
        engine=engine,
        workers=workers,
        use_cascade=use_cascade,
        use_metric_index=use_metric_index,
        **kwargs,
    )
    return engine_obj.knn(parse_tree(query), k, deadline=deadline)


def range_query(
    query: TreeLike,
    corpus: Union[TreeCorpus, Sequence[TreeLike]],
    threshold: float,
    algorithm: str = "rted",
    cost_model: Optional[CostModel] = None,
    engine: Optional[str] = None,
    workers: int = 1,
    use_cascade: bool = True,
    use_metric_index: bool = True,
    deadline: Optional[float] = None,
    **kwargs,
) -> QueryResult:
    """Every corpus tree with ``TED(query, tree) < threshold``, exactly.

    The one-vs-corpus counterpart of :func:`similarity_join` (same strict
    ``< τ`` match semantics), run through the planner/filter/refiner
    pipeline with metric-index candidate generation when the cost model
    passes the metric gate.  Results are ``(index, distance)`` sorted by
    ``(distance, index)``; distances are always exact.  See :func:`knn`
    for the ``corpus``, keyword-argument and ``deadline`` conventions (on
    expiry the matches found so far return with ``stats.partial = True`` —
    a subset of the full answer, never a wrong superset).

    Examples
    --------
    >>> from repro import range_query
    >>> result = range_query("{a{b}{c}}", ["{a{b}{c}{d}}", "{x{y}}", "{a{b}}"], 2.0)
    >>> result.indices
    [0, 2]
    """
    engine_obj = query_engine(
        _query_corpus(corpus),
        algorithm=algorithm,
        cost_model=cost_model,
        engine=engine,
        workers=workers,
        use_cascade=use_cascade,
        use_metric_index=use_metric_index,
        **kwargs,
    )
    return engine_obj.range_query(parse_tree(query), threshold, deadline=deadline)


def tree_to_bracket(tree: TreeLike) -> str:
    """Serialize a tree to bracket notation."""
    return to_bracket(parse_tree(tree))
