"""Figure 8 — number of relevant subproblems per algorithm and tree shape.

The paper creates identical-tree pairs of six shapes (left branch, right
branch, full binary, zig-zag, random, mixed) with sizes between 20 and 2000
nodes and counts the relevant subproblems computed by Zhang-L, Zhang-R,
Klein-H, Demaine-H and RTED.  The expected outcome: every fixed-strategy
algorithm degenerates on at least one shape, while RTED always matches the
best competitor (LB, RB, FB, ZZ) or beats all of them (random, MX).

This harness reproduces the experiment with the cost-formula counters
(:mod:`repro.counting`).  Paper-scale sizes (up to 2000 nodes) work but take
minutes in pure Python; the default sweep stops at 600 nodes, which is enough
to show the same asymptotic separation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..counting import count_subproblems_fast
from ..datasets.random_trees import random_tree
from ..datasets.shapes import make_shape
from ..trees.tree import Tree
from .runner import format_count, format_table, linear_sizes

#: Shapes of Figure 8, in sub-figure order (a)-(f).
FIG8_SHAPES: Sequence[str] = (
    "left-branch",
    "right-branch",
    "full-binary",
    "zigzag",
    "random",
    "mixed",
)

#: Algorithms compared, in the legend order of the figure.
FIG8_ALGORITHMS: Sequence[str] = ("zhang-l", "zhang-r", "klein-h", "demaine-h", "rted")


@dataclass
class Fig8Point:
    """One data point: subproblem counts of every algorithm at one tree size."""

    shape: str
    size: int
    counts: Dict[str, int] = field(default_factory=dict)

    def best_competitor(self) -> str:
        """Name of the non-RTED algorithm with the fewest subproblems."""
        competitors = {name: value for name, value in self.counts.items() if name != "rted"}
        return min(competitors, key=competitors.get)

    def rted_vs_best_ratio(self) -> float:
        """RTED subproblems divided by the best competitor's subproblems."""
        best = min(value for name, value in self.counts.items() if name != "rted")
        return self.counts["rted"] / best if best else 1.0


@dataclass
class Fig8Result:
    """All data points of the Figure 8 reproduction, grouped by shape."""

    points: Dict[str, List[Fig8Point]] = field(default_factory=dict)

    def series(self, shape: str, algorithm: str) -> List[tuple]:
        """(size, count) series for one shape and algorithm — one figure line."""
        return [(point.size, point.counts[algorithm]) for point in self.points[shape]]


def _tree_for_shape(shape: str, size: int, seed: int) -> Tree:
    if shape == "random":
        return random_tree(size, rng=random.Random(seed))
    return make_shape(shape, size)


def run_fig8(
    sizes: Optional[Sequence[int]] = None,
    shapes: Sequence[str] = FIG8_SHAPES,
    algorithms: Sequence[str] = FIG8_ALGORITHMS,
    seed: int = 42,
) -> Fig8Result:
    """Run the Figure 8 experiment.

    ``sizes`` defaults to a linear sweep 20..600; pass e.g.
    ``range(400, 2001, 400)`` to match the paper exactly (slower).
    The subproblem counts are computed for pairs of *identical* trees, as in
    the paper.
    """
    if sizes is None:
        sizes = linear_sizes(20, 600, 6)

    result = Fig8Result()
    for shape in shapes:
        points: List[Fig8Point] = []
        for size in sizes:
            tree = _tree_for_shape(shape, size, seed)
            point = Fig8Point(shape=shape, size=tree.n)
            for algorithm in algorithms:
                point.counts[algorithm] = count_subproblems_fast(algorithm, tree, tree)
            points.append(point)
        result.points[shape] = points
    return result


def format_fig8(result: Fig8Result) -> str:
    """Render the Figure 8 data as one table per shape."""
    sections = []
    for shape, points in result.points.items():
        if not points:
            continue
        algorithms = list(points[0].counts)
        headers = ["size"] + list(algorithms) + ["winner", "rted/best"]
        rows = []
        for point in points:
            row = [point.size]
            row.extend(format_count(point.counts[name]) for name in algorithms)
            row.append(point.best_competitor())
            row.append(f"{point.rted_vs_best_ratio():.3f}")
            rows.append(row)
        sections.append(f"Figure 8 — shape: {shape}\n" + format_table(headers, rows))
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_fig8(run_fig8()))


if __name__ == "__main__":  # pragma: no cover
    main()
