"""Table 2 — RTED vs. best/worst competitor on phylogenetic (TreeFam-like) trees.

The paper partitions the TreeFam dataset by tree size (<500, 500–1000, >1000
nodes), samples 20 trees per partition, and computes, for every pair of
partitions, the ratio of relevant subproblems computed by RTED with respect to
(a) the best and (b) the worst competitor on each tree pair.  RTED always
computes fewer subproblems (ratios 84–95 % of the best and 5.6–30.6 % of the
worst competitor), and the advantage grows with the tree size.

The reproduction uses the TreeFam-like simulated collection and the exact
cost-formula counters; the size boundaries are scaled down by default (they
can be set to the paper's 500/1000 via the parameters).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..counting import count_subproblems_fast
from ..datasets.workloads import sample_partition, treefam_partitions
from ..trees.tree import Tree
from .runner import format_table

#: Competitors against which RTED is compared.
TABLE2_COMPETITORS: Sequence[str] = ("zhang-l", "zhang-r", "klein-h", "demaine-h")


@dataclass
class Table2Cell:
    """Aggregated ratios for one pair of size partitions."""

    partition_f: int
    partition_g: int
    pairs: int
    ratio_to_best: float
    ratio_to_worst: float


@dataclass
class Table2Result:
    partition_labels: List[str] = field(default_factory=list)
    cells: Dict[Tuple[int, int], Table2Cell] = field(default_factory=dict)

    def matrix(self, which: str) -> List[List[float]]:
        """Ratio matrix (``which`` is ``"best"`` or ``"worst"``), row = partition of F."""
        size = len(self.partition_labels)
        table = [[0.0] * size for _ in range(size)]
        for (i, j), cell in self.cells.items():
            table[i][j] = cell.ratio_to_best if which == "best" else cell.ratio_to_worst
        return table


def run_table2(
    num_trees: int = 45,
    boundaries: Sequence[int] = (120, 240),
    size_range: Tuple[int, int] = (40, 400),
    sample_size: int = 5,
    seed: int = 42,
    partitions: Optional[List[List[Tree]]] = None,
) -> Table2Result:
    """Run the Table 2 experiment on a TreeFam-like collection.

    For every ordered pair of partitions, ``sample_size`` trees are sampled
    from each partition and the subproblem ratios are averaged over all tree
    pairs (the paper uses samples of size 20).
    """
    if partitions is None:
        partitions = treefam_partitions(
            num_trees=num_trees, boundaries=list(boundaries), size_range=size_range, rng=seed
        )
    samples = [sample_partition(partition, sample_size, rng=seed + index)
               for index, partition in enumerate(partitions)]

    labels = []
    lower = 0
    for boundary in boundaries:
        labels.append(f"<{boundary}" if lower == 0 else f"{lower}-{boundary}")
        lower = boundary
    labels.append(f">{lower}")

    result = Table2Result(partition_labels=labels)

    for i, sample_f in enumerate(samples):
        for j, sample_g in enumerate(samples):
            ratios_best: List[float] = []
            ratios_worst: List[float] = []
            for tree_f, tree_g in itertools.product(sample_f, sample_g):
                rted = count_subproblems_fast("rted", tree_f, tree_g)
                competitor_counts = [
                    count_subproblems_fast(name, tree_f, tree_g) for name in TABLE2_COMPETITORS
                ]
                best = min(competitor_counts)
                worst = max(competitor_counts)
                if best > 0:
                    ratios_best.append(rted / best)
                if worst > 0:
                    ratios_worst.append(rted / worst)
            if not ratios_best:
                continue
            result.cells[(i, j)] = Table2Cell(
                partition_f=i,
                partition_g=j,
                pairs=len(ratios_best),
                ratio_to_best=sum(ratios_best) / len(ratios_best),
                ratio_to_worst=sum(ratios_worst) / len(ratios_worst),
            )
    return result


def format_table2(result: Table2Result) -> str:
    sections = []
    for which, title in (("best", "(a) RTED to the best competitor"),
                         ("worst", "(b) RTED to the worst competitor")):
        headers = ["tree sizes"] + result.partition_labels
        matrix = result.matrix(which)
        rows = []
        for i, label in enumerate(result.partition_labels):
            row = [label]
            for j in range(len(result.partition_labels)):
                cell = result.cells.get((i, j))
                row.append(f"{100 * matrix[i][j]:.1f}%" if cell else "—")
            rows.append(row)
        sections.append(f"Table 2 {title}\n" + format_table(headers, rows))
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_table2(run_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
