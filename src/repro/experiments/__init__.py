"""Experiment harnesses reproducing every figure and table of the paper."""

from . import (
    ablation_strategy,
    fig8_subproblems,
    fig9_runtime,
    fig10_strategy_overhead,
    runner,
    table1_join,
    table2_treefam,
)
from .fig8_subproblems import Fig8Result, format_fig8, run_fig8
from .fig9_runtime import Fig9Result, format_fig9, run_fig9
from .fig10_strategy_overhead import Fig10Result, format_fig10, run_fig10
from .table1_join import Table1Result, format_table1, run_table1
from .table2_treefam import Table2Result, format_table2, run_table2
from .ablation_strategy import (
    run_strategy_computation_ablation,
    run_strategy_space_ablation,
)

__all__ = [
    "runner",
    "fig8_subproblems",
    "fig9_runtime",
    "fig10_strategy_overhead",
    "table1_join",
    "table2_treefam",
    "ablation_strategy",
    "run_fig8",
    "format_fig8",
    "Fig8Result",
    "run_fig9",
    "format_fig9",
    "Fig9Result",
    "run_fig10",
    "format_fig10",
    "Fig10Result",
    "run_table1",
    "format_table1",
    "Table1Result",
    "run_table2",
    "format_table2",
    "Table2Result",
    "run_strategy_space_ablation",
    "run_strategy_computation_ablation",
]
