"""Shared infrastructure for the experiment harnesses.

Each experiment module (one per figure / table of the paper) produces plain
data structures; this module provides the small amount of shared machinery:
timing helpers, human-readable number formatting (the paper's axes use
"M"/"G" suffixes), and fixed-width table rendering for the harness output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple


@dataclass
class TimedValue:
    """A value together with the wall-clock seconds spent producing it."""

    value: object
    seconds: float


def timed(function: Callable[[], object]) -> TimedValue:
    """Run ``function`` and return its result together with the elapsed time."""
    start = time.perf_counter()
    value = function()
    return TimedValue(value=value, seconds=time.perf_counter() - start)


def format_count(value: float) -> str:
    """Format a subproblem count the way the paper's axes do (K/M/G suffixes)."""
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}K"
    return f"{value:.0f}"


def format_seconds(value: float) -> str:
    """Format a duration with a sensible unit."""
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [render_row(list(headers)), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def geometric_sizes(start: int, stop: int, points: int) -> List[int]:
    """``points`` sizes spaced geometrically between ``start`` and ``stop``."""
    if points < 2:
        return [stop]
    ratio = (stop / start) ** (1.0 / (points - 1))
    sizes = []
    current = float(start)
    for _ in range(points):
        sizes.append(int(round(current)))
        current *= ratio
    # De-duplicate while preserving order (small ranges can collapse).
    unique: List[int] = []
    for size in sizes:
        if not unique or size > unique[-1]:
            unique.append(size)
    return unique


def linear_sizes(start: int, stop: int, points: int) -> List[int]:
    """``points`` sizes spaced linearly between ``start`` and ``stop``."""
    if points < 2:
        return [stop]
    step = (stop - start) / (points - 1)
    sizes = [int(round(start + index * step)) for index in range(points)]
    unique: List[int] = []
    for size in sizes:
        if not unique or size > unique[-1]:
            unique.append(size)
    return unique
