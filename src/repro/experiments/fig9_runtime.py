"""Figure 9 — runtime of the fastest algorithms for different tree shapes.

The paper compares the wall-clock runtime of Zhang-L, Demaine-H and RTED on
full binary (FB), zig-zag (ZZ) and mixed (MX) trees of growing size.  The
expected qualitative outcome:

* FB: Zhang-L and RTED scale well, Demaine-H grows much faster;
* ZZ: Zhang-L degenerates, Demaine-H and RTED scale well (RTED slightly ahead);
* MX: only RTED scales well; both competitors blow up.

The absolute runtimes of this reproduction are not comparable to the paper's
Java implementation on server hardware — the distance kernels here are pure
Python — so the default sizes are much smaller (the engine-backed algorithms
evaluate the same *number* of subproblems, each at a higher constant cost).
The curves' relative ordering and growth rates are the reproduced quantity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..algorithms.registry import make_algorithm
from ..datasets.shapes import make_shape
from ..datasets.random_trees import random_tree
from ..trees.tree import Tree
from .runner import format_seconds, format_table, linear_sizes

#: Shapes of Figure 9, in sub-figure order (a)-(c).
FIG9_SHAPES: Sequence[str] = ("full-binary", "zigzag", "mixed")

#: Algorithms compared in Figure 9.
FIG9_ALGORITHMS: Sequence[str] = ("zhang-l", "demaine-h", "rted")


@dataclass
class Fig9Point:
    """Wall-clock runtimes (seconds) of every algorithm at one tree size."""

    shape: str
    size: int
    runtimes: Dict[str, float] = field(default_factory=dict)
    distances: Dict[str, float] = field(default_factory=dict)

    def fastest(self) -> str:
        return min(self.runtimes, key=self.runtimes.get)


@dataclass
class Fig9Result:
    points: Dict[str, List[Fig9Point]] = field(default_factory=dict)

    def series(self, shape: str, algorithm: str) -> List[tuple]:
        return [(point.size, point.runtimes[algorithm]) for point in self.points[shape]]


def _tree_for_shape(shape: str, size: int, seed: int) -> Tree:
    if shape == "random":
        return random_tree(size, rng=random.Random(seed))
    return make_shape(shape, size)


def run_fig9(
    sizes: Optional[Sequence[int]] = None,
    shapes: Sequence[str] = FIG9_SHAPES,
    algorithms: Sequence[str] = FIG9_ALGORITHMS,
    seed: int = 42,
) -> Fig9Result:
    """Run the Figure 9 experiment on identical-tree pairs of each shape."""
    if sizes is None:
        sizes = linear_sizes(16, 72, 4)

    result = Fig9Result()
    for shape in shapes:
        points: List[Fig9Point] = []
        for size in sizes:
            tree = _tree_for_shape(shape, size, seed)
            point = Fig9Point(shape=shape, size=tree.n)
            for name in algorithms:
                algorithm = make_algorithm(name)
                ted = algorithm.compute(tree, tree)
                point.runtimes[name] = ted.total_time
                point.distances[name] = ted.distance
            points.append(point)
        result.points[shape] = points
    return result


def format_fig9(result: Fig9Result) -> str:
    sections = []
    for shape, points in result.points.items():
        if not points:
            continue
        algorithms = list(points[0].runtimes)
        headers = ["size"] + list(algorithms) + ["fastest"]
        rows = []
        for point in points:
            row = [point.size]
            row.extend(format_seconds(point.runtimes[name]) for name in algorithms)
            row.append(point.fastest())
            rows.append(row)
        sections.append(f"Figure 9 — shape: {shape}\n" + format_table(headers, rows))
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_fig9(run_fig9()))


if __name__ == "__main__":  # pragma: no cover
    main()
