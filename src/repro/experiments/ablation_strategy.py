"""Ablations on the strategy machinery.

Two studies that the paper motivates but does not tabulate explicitly:

* **A1 — strategy-space ablation.**  The optimal strategy is recomputed under
  restricted choice sets: left/right paths only (the space of the Zhang-style
  algorithms), heavy paths only (the space of Klein / Demaine), single-tree
  paths only (the space considered by Dulucq & Touzet), and the full LRH
  space used by RTED.  The resulting subproblem counts quantify how much each
  ingredient (heavy paths, decomposing either tree) contributes to RTED's
  robustness — the discussion of Sections 3 and 5.3.

* **A2 — strategy-computation ablation.**  The baseline ``O(n^3)`` strategy
  algorithm of Section 6.1 is compared against Algorithm 2 (``O(n^2)``): both
  must return the same optimal cost, and the runtime gap demonstrates why the
  efficient algorithm is needed (Section 6.2).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.optimal_strategy import optimal_strategy
from ..algorithms.strategies import SIDE_F, SIDE_G, PathChoice
from ..counting import optimal_cost_restricted
from ..datasets.random_trees import random_tree
from ..datasets.shapes import make_shape
from ..trees.tree import HEAVY, LEFT, RIGHT, Tree
from .runner import format_count, format_seconds, format_table

#: Restricted strategy spaces of the A1 ablation.
STRATEGY_SPACES: Dict[str, Tuple[PathChoice, ...]] = {
    "left-right (F only)": (PathChoice(SIDE_F, LEFT), PathChoice(SIDE_F, RIGHT)),
    "heavy only": (PathChoice(SIDE_F, HEAVY), PathChoice(SIDE_G, HEAVY)),
    "single tree (F only)": (
        PathChoice(SIDE_F, LEFT),
        PathChoice(SIDE_F, RIGHT),
        PathChoice(SIDE_F, HEAVY),
    ),
    "full LRH (RTED)": (
        PathChoice(SIDE_F, HEAVY),
        PathChoice(SIDE_G, HEAVY),
        PathChoice(SIDE_F, LEFT),
        PathChoice(SIDE_G, LEFT),
        PathChoice(SIDE_F, RIGHT),
        PathChoice(SIDE_G, RIGHT),
    ),
}


@dataclass
class StrategySpaceRow:
    """Optimal subproblem count for one shape under one restricted space."""

    shape: str
    size: int
    counts: Dict[str, int] = field(default_factory=dict)


@dataclass
class StrategyComputationRow:
    """Baseline vs. Algorithm 2 strategy computation for one tree size."""

    size: int
    baseline_seconds: float
    algorithm2_seconds: float
    baseline_cost: int
    algorithm2_cost: int

    @property
    def speedup(self) -> float:
        if self.algorithm2_seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.algorithm2_seconds


def _tree_for_shape(shape: str, size: int, seed: int) -> Tree:
    if shape == "random":
        return random_tree(size, rng=random.Random(seed))
    return make_shape(shape, size)


def run_strategy_space_ablation(
    shapes: Sequence[str] = ("left-branch", "zigzag", "mixed", "random"),
    size: int = 120,
    seed: int = 42,
) -> List[StrategySpaceRow]:
    """A1: optimal subproblem counts under restricted strategy spaces."""
    rows: List[StrategySpaceRow] = []
    for shape in shapes:
        tree = _tree_for_shape(shape, size, seed)
        row = StrategySpaceRow(shape=shape, size=tree.n)
        for space_name, choices in STRATEGY_SPACES.items():
            row.counts[space_name] = optimal_cost_restricted(tree, tree, choices)
        rows.append(row)
    return rows


def run_strategy_computation_ablation(
    sizes: Sequence[int] = (40, 80, 160),
    shape: str = "mixed",
    seed: int = 42,
) -> List[StrategyComputationRow]:
    """A2: baseline O(n^3) strategy computation vs. Algorithm 2 (O(n^2))."""
    rows: List[StrategyComputationRow] = []
    full_space = STRATEGY_SPACES["full LRH (RTED)"]
    for size in sizes:
        tree = _tree_for_shape(shape, size, seed)

        start = time.perf_counter()
        baseline_cost = optimal_cost_restricted(tree, tree, full_space)
        baseline_seconds = time.perf_counter() - start

        start = time.perf_counter()
        algorithm2_cost = optimal_strategy(tree, tree).cost
        algorithm2_seconds = time.perf_counter() - start

        rows.append(
            StrategyComputationRow(
                size=tree.n,
                baseline_seconds=baseline_seconds,
                algorithm2_seconds=algorithm2_seconds,
                baseline_cost=baseline_cost,
                algorithm2_cost=algorithm2_cost,
            )
        )
    return rows


def format_ablations(
    space_rows: List[StrategySpaceRow], computation_rows: List[StrategyComputationRow]
) -> str:
    sections = []

    space_names = list(STRATEGY_SPACES)
    headers = ["shape", "size"] + space_names
    rows = []
    for row in space_rows:
        rows.append(
            [row.shape, row.size] + [format_count(row.counts[name]) for name in space_names]
        )
    sections.append("Ablation A1 — optimal cost per strategy space\n" + format_table(headers, rows))

    headers = ["size", "baseline (O(n^3))", "Algorithm 2 (O(n^2))", "speedup", "costs equal"]
    rows = [
        [
            row.size,
            format_seconds(row.baseline_seconds),
            format_seconds(row.algorithm2_seconds),
            f"{row.speedup:.1f}x",
            "yes" if row.baseline_cost == row.algorithm2_cost else "NO",
        ]
        for row in computation_rows
    ]
    sections.append(
        "Ablation A2 — strategy computation: baseline vs. Algorithm 2\n"
        + format_table(headers, rows)
    )
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_ablations(run_strategy_space_ablation(), run_strategy_computation_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
