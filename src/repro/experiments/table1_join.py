"""Table 1 — scalability of a similarity self-join over differently shaped trees.

The paper generates one tree per shape in {LB, RB, FB, ZZ, Random} with about
1000 nodes each and performs a self join (``TED(T1, T2) < τ``) with every
algorithm, reporting the total runtime and the total number of relevant
subproblems.  Because the join pairs trees of *different* shapes, every fixed
strategy degenerates on some pair and RTED wins by an order of magnitude
(paper: 140 s / 1.96·10⁹ subproblems for RTED vs. 694–2483 s / 17.6–41.8·10⁹
for the competitors).

The reproduction keeps the workload and reports the same two columns.  The
default tree size is reduced (pure-Python kernels); the subproblem counts are
additionally computed with the exact cost-formula counters so that the
paper-scale column can be reproduced independently of the runtime
measurement.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from ..counting import count_subproblems_fast
from ..datasets.workloads import join_workload
from ..trees.tree import Tree
from .runner import format_count, format_seconds, format_table


@dataclass
class Table1Row:
    """One row of Table 1: a join executed with one algorithm."""

    algorithm: str
    seconds: float
    subproblems_measured: int
    subproblems_cost_formula: int
    matches: int


@dataclass
class Table1Result:
    threshold: float
    tree_sizes: List[int] = field(default_factory=list)
    rows: List[Table1Row] = field(default_factory=list)

    def row(self, algorithm: str) -> Table1Row:
        for entry in self.rows:
            if entry.algorithm == algorithm:
                return entry
        raise KeyError(algorithm)

    def speedup_over_best_competitor(self) -> float:
        """RTED speed-up factor w.r.t. the fastest fixed-strategy competitor."""
        rted_seconds = self.row("rted").seconds
        competitor_seconds = min(
            entry.seconds for entry in self.rows if entry.algorithm != "rted"
        )
        return competitor_seconds / rted_seconds if rted_seconds else float("inf")


def run_table1(
    node_count: int = 48,
    threshold: Optional[float] = None,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    seed: int = 42,
    trees: Optional[Sequence[Tree]] = None,
) -> Table1Result:
    """Run the Table 1 self join.

    ``threshold`` defaults to half the tree size, which (as in the paper)
    matches some but not all pairs.  Pass ``node_count≈1000`` to match the
    paper's workload exactly — expect long runtimes in pure Python.
    """
    workload = list(trees) if trees is not None else join_workload(node_count, rng=seed)
    if threshold is None:
        threshold = node_count / 2

    result = Table1Result(threshold=threshold, tree_sizes=[tree.n for tree in workload])
    pairs = list(itertools.combinations(range(len(workload)), 2))

    for name in algorithms:
        algorithm = make_algorithm(name)
        start = time.perf_counter()
        measured_subproblems = 0
        matches = 0
        for i, j in pairs:
            ted = algorithm.compute(workload[i], workload[j])
            measured_subproblems += ted.subproblems
            if ted.distance < threshold:
                matches += 1
        seconds = time.perf_counter() - start

        cost_formula_subproblems = sum(
            count_subproblems_fast(name, workload[i], workload[j]) for i, j in pairs
        )
        result.rows.append(
            Table1Row(
                algorithm=name,
                seconds=seconds,
                subproblems_measured=measured_subproblems,
                subproblems_cost_formula=cost_formula_subproblems,
                matches=matches,
            )
        )
    return result


def format_table1(result: Table1Result) -> str:
    headers = ["Algorithm", "Time", "#Rel. subproblems (cost formula)", "#Evaluated", "Matches"]
    rows = [
        [
            row.algorithm,
            format_seconds(row.seconds),
            format_count(row.subproblems_cost_formula),
            format_count(row.subproblems_measured),
            row.matches,
        ]
        for row in result.rows
    ]
    header = (
        f"Table 1 — join on trees with different shapes "
        f"(sizes {result.tree_sizes}, τ = {result.threshold})"
    )
    return header + "\n" + format_table(headers, rows)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_table1(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
