"""Figure 10 — overhead of the strategy computation in the overall RTED runtime.

RTED computes the optimal strategy (Algorithm 2) before the distance.  The
paper measures, on TreeBank, SwissProt and synthetic random trees, how much
time the strategy computation adds: it scales smoothly with the tree size, is
independent of the tree shape, and its share of the total runtime *decreases*
as trees grow (the distance computation grows at least cubically in the worst
case while the strategy is always quadratic).

The reproduction uses the simulated TreeBank-like / SwissProt-like collections
(see :mod:`repro.datasets.realworld`) and the same pair-sampling procedure:
for every target size the two collection trees closest to that size are
picked and their average size is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..algorithms.rted import RTED
from ..datasets.random_trees import random_forest_of_trees
from ..datasets.realworld import generate_collection
from ..datasets.workloads import pairs_at_size_intervals
from .runner import format_seconds, format_table, linear_sizes

#: Dataset keys of Figure 10, in sub-figure order (a)-(c).
FIG10_DATASETS: Sequence[str] = ("treebank", "swissprot", "random")


@dataclass
class Fig10Point:
    """Strategy time vs. overall time for one tree pair."""

    dataset: str
    size: int
    strategy_seconds: float
    total_seconds: float
    subproblems: int

    @property
    def overhead_fraction(self) -> float:
        """Share of the total runtime spent computing the strategy."""
        if self.total_seconds == 0:
            return 0.0
        return self.strategy_seconds / self.total_seconds


@dataclass
class Fig10Result:
    points: Dict[str, List[Fig10Point]] = field(default_factory=dict)


def _collection_for(dataset: str, num_trees: int, size_range: tuple, seed: int):
    if dataset == "random":
        return random_forest_of_trees(num_trees, size_range=size_range, rng=seed)
    return generate_collection(dataset, num_trees, rng=seed, size_range=size_range)


def run_fig10(
    datasets: Sequence[str] = FIG10_DATASETS,
    targets: Optional[Sequence[int]] = None,
    num_trees: int = 40,
    size_range: tuple = (20, 180),
    seed: int = 42,
) -> Fig10Result:
    """Run the Figure 10 experiment on the simulated collections."""
    if targets is None:
        targets = linear_sizes(size_range[0] + 10, size_range[1] - 10, 5)

    algorithm = RTED()
    result = Fig10Result()
    for dataset in datasets:
        collection = _collection_for(dataset, num_trees, size_range, seed)
        points: List[Fig10Point] = []
        for average_size, tree_a, tree_b in pairs_at_size_intervals(collection, targets):
            ted = algorithm.compute(tree_a, tree_b)
            points.append(
                Fig10Point(
                    dataset=dataset,
                    size=average_size,
                    strategy_seconds=ted.strategy_time,
                    total_seconds=ted.total_time,
                    subproblems=ted.subproblems,
                )
            )
        result.points[dataset] = points
    return result


def format_fig10(result: Fig10Result) -> str:
    sections = []
    for dataset, points in result.points.items():
        headers = ["size", "strategy", "overall", "strategy share"]
        rows = [
            [
                point.size,
                format_seconds(point.strategy_seconds),
                format_seconds(point.total_seconds),
                f"{100 * point.overhead_fraction:.1f}%",
            ]
            for point in points
        ]
        sections.append(f"Figure 10 — dataset: {dataset}\n" + format_table(headers, rows))
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_fig10(run_fig10()))


if __name__ == "__main__":  # pragma: no cover
    main()
