"""Cooperative cancellation, deadlines and hardened environment parsing.

The compute kernels of this package are long-running dynamic programs: a
single adversarial pair can keep a row loop busy for seconds.  A serving
layer (:mod:`repro.service`) — or any caller with a latency budget — needs a
way to *cancel* such a computation mid-flight without killing the process.
This module provides the primitives:

:class:`Deadline`
    A monotonic-clock expiry (optionally combined with a
    :class:`CancelToken`).  Kernels test it *amortized*: :meth:`Deadline.tick`
    only reads the clock every N calls, with N adapted on the fly so that
    clock reads happen roughly once per :data:`TARGET_RESOLUTION` seconds —
    the per-row overhead stays below 1% regardless of row cost (measured in
    ``benchmarks/bench_service.py``), while expiry is still detected within a
    small multiple of the resolution.

:class:`CancelToken`
    A thread-safe cancellation flag.  Cancelling a token makes every
    :class:`Deadline` carrying it expire immediately — the serving layer's
    graceful drain uses this to cut short in-flight work.

:func:`deadline_scope` / :func:`active_deadline`
    Thread-local propagation.  ``compute(deadline=...)`` installs the
    deadline for the duration of the call; the row kernels (``spf.py``,
    ``spf_numpy.py``, ``workspace.compute_small``, ``batch_kernel.run_batch``,
    ``zhang_shasha.py``) pick it up via :func:`active_deadline` without any
    per-kernel plumbing.  A ``None`` scope is a no-op, so nested computations
    inherit the caller's deadline.

Expiry raises :class:`~repro.exceptions.ComputeTimeoutError` — unlike the
``cutoff=τ`` machinery (which converts its internal ``CutoffExceeded`` into a
:class:`~repro.algorithms.base.BoundedResult`), a deadline carries no partial
answer for a single pair, so it propagates as an exception through the public
API.  The checks read state only and never alter the DP arithmetic: results
on the no-deadline path — and on armed runs that finish in time — stay
bit-identical to deadline-free runs.

The module also centralizes *hardened* environment parsing
(:func:`env_int` / :func:`env_float` / :func:`env_flag`): a malformed value
like ``RTED_CHUNK_TIMEOUT=abc`` warns and falls back to the default instead
of raising at import or call time.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from ..exceptions import ComputeTimeoutError, ReproError

__all__ = [
    "CancelToken",
    "ComputeTimeoutError",
    "Deadline",
    "TARGET_RESOLUTION",
    "active_deadline",
    "as_deadline",
    "deadline_scope",
    "env_flag",
    "env_float",
    "env_int",
]


# --------------------------------------------------------------------------- #
# Hardened environment parsing
# --------------------------------------------------------------------------- #

def _env_warn(name: str, raw: str, expected: str, default) -> None:
    warnings.warn(
        f"ignoring malformed environment variable {name}={raw!r} "
        f"(expected {expected}); using default {default!r}",
        RuntimeWarning,
        stacklevel=3,
    )


def env_int(
    name: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
) -> Optional[int]:
    """Integer environment override with warn-and-fallback semantics.

    A malformed value (``RTED_FOO=abc``) — or one below ``minimum`` — emits a
    :class:`RuntimeWarning` and returns ``default`` instead of raising, so a
    typo in a deployment environment never takes the process down at import
    time.  An unset or empty variable returns ``default`` silently.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        _env_warn(name, raw, "an integer", default)
        return default
    if minimum is not None and value < minimum:
        _env_warn(name, raw, f"an integer >= {minimum}", default)
        return default
    return value


def env_float(
    name: str,
    default: Optional[float] = None,
    minimum: Optional[float] = None,
    positive: bool = False,
) -> Optional[float]:
    """Float environment override with warn-and-fallback semantics."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        _env_warn(name, raw, "a number", default)
        return default
    if value != value:  # NaN never represents a usable setting
        _env_warn(name, raw, "a number", default)
        return default
    if positive and value <= 0:
        _env_warn(name, raw, "a positive number", default)
        return default
    if minimum is not None and value < minimum:
        _env_warn(name, raw, f"a number >= {minimum}", default)
        return default
    return value


_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def env_flag(name: str, default: bool = False) -> bool:
    """Boolean environment override (``1/true/yes/on`` vs ``0/false/no/off``).

    Unrecognized words warn and fall back to ``default`` — consistent with
    :func:`env_int` — rather than silently counting as truthy.  An unset or
    empty variable returns ``default`` silently.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    word = raw.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    _env_warn(name, raw, "a boolean (1/0/true/false/yes/no/on/off)", default)
    return default


# --------------------------------------------------------------------------- #
# Cancellation primitives
# --------------------------------------------------------------------------- #

#: Aimed-for wall-clock spacing of *actual* clock reads inside
#: :meth:`Deadline.tick`.  The adaptive interval grows until consecutive
#: reads are at least ~this far apart (bounding overhead) and shrinks when
#: they drift far beyond it (bounding detection latency).  Override with
#: ``RTED_DEADLINE_RESOLUTION`` (seconds).
TARGET_RESOLUTION: float = env_float("RTED_DEADLINE_RESOLUTION", 0.005, minimum=1e-5)

#: Upper bound on the adaptive tick interval — a backstop so a burst of
#: ultra-cheap ticks can never push the next clock read arbitrarily far out.
_MAX_INTERVAL = 1 << 22


class CancelToken:
    """Thread-safe cooperative cancellation flag.

    Sharable across threads (the serving layer cancels compute threads from
    the event loop); a :class:`Deadline` carrying a cancelled token reports
    itself expired on its next check.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancelToken(cancelled={self.cancelled})"


class Deadline:
    """A monotonic-clock compute budget, tested amortized inside kernels.

    Parameters
    ----------
    timeout:
        Budget in seconds from now.  ``None`` (with no ``expires_at``) makes
        a deadline that never expires by time — useful to carry only a
        :class:`CancelToken`.
    expires_at:
        Absolute ``time.monotonic()`` expiry, overriding ``timeout``.  On
        Linux the monotonic clock is system-wide, so an absolute expiry is
        meaningful across processes on the same machine.
    token:
        Optional :class:`CancelToken`; cancelling it expires the deadline
        immediately.

    The hot-path method is :meth:`tick`: a counter increment almost always,
    a clock read every ``interval`` calls, where ``interval`` doubles while
    reads arrive faster than :data:`TARGET_RESOLUTION` and halves when they
    lag far behind it.  Kernels may also read :attr:`interval` and keep a
    local countdown, calling :meth:`poll` only when it runs out — the
    cheapest inlined form for scalar row loops.
    """

    __slots__ = ("expires_at", "token", "_count", "_interval", "_last_check")

    def __init__(
        self,
        timeout: Optional[float] = None,
        *,
        expires_at: Optional[float] = None,
        token: Optional[CancelToken] = None,
    ) -> None:
        if expires_at is None and timeout is not None:
            expires_at = time.monotonic() + float(timeout)
        self.expires_at = expires_at
        self.token = token
        self._count = 0
        self._interval = 4  # start conservative; adapts upward in ticks
        self._last_check = time.monotonic()

    # -- introspection -------------------------------------------------- #
    @property
    def interval(self) -> int:
        """Current amortization interval (ticks per clock read)."""
        return self._interval

    def remaining(self) -> float:
        """Seconds until expiry (``inf`` for token-only deadlines)."""
        if self.token is not None and self.token.cancelled:
            return 0.0
        if self.expires_at is None:
            return float("inf")
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the budget is exhausted or the token cancelled."""
        if self.token is not None and self.token.cancelled:
            return True
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    # -- checking ------------------------------------------------------- #
    def check(self) -> None:
        """Raise :class:`ComputeTimeoutError` if expired (unamortized)."""
        if self.expired():
            raise ComputeTimeoutError(self._message())

    def poll(self) -> None:
        """One *actual* clock check plus interval adaptation.

        Called by :meth:`tick` every ``interval`` ticks, or directly by
        kernels that inline the countdown themselves.
        """
        now = time.monotonic()
        elapsed = now - self._last_check
        self._last_check = now
        # Adapt: clock reads should land roughly TARGET_RESOLUTION apart.
        if elapsed < 0.25 * TARGET_RESOLUTION:
            if self._interval < _MAX_INTERVAL:
                self._interval <<= 1
        elif elapsed > 4.0 * TARGET_RESOLUTION and self._interval > 1:
            self._interval >>= 1
        if (self.token is not None and self.token.cancelled) or (
            self.expires_at is not None and now >= self.expires_at
        ):
            raise ComputeTimeoutError(self._message())

    def tick(self, weight: int = 1) -> None:
        """Amortized check: counts ``weight`` units, polls every ``interval``."""
        self._count += weight
        if self._count >= self._interval:
            self._count = 0
            self.poll()

    def _message(self) -> str:
        if self.token is not None and self.token.cancelled:
            return "computation cancelled"
        return "compute deadline exceeded"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(remaining={self.remaining():.3f}s, "
            f"interval={self._interval})"
        )


DeadlineLike = Union[None, int, float, Deadline]


def as_deadline(value: DeadlineLike) -> Optional[Deadline]:
    """Coerce ``None`` / seconds / :class:`Deadline` into a deadline.

    A plain number is a budget in seconds from now; non-positive budgets
    produce an already-expired deadline (checks fire on first tick), and
    invalid types raise :class:`~repro.exceptions.ReproError` so API misuse
    surfaces immediately rather than as a never-expiring deadline.
    """
    if value is None or isinstance(value, Deadline):
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ReproError(
            f"deadline must be a number of seconds or a Deadline, "
            f"got {type(value).__name__}"
        )
    return Deadline(float(value))


# --------------------------------------------------------------------------- #
# Thread-local propagation
# --------------------------------------------------------------------------- #

_LOCAL = threading.local()


def active_deadline() -> Optional[Deadline]:
    """The deadline installed by the innermost :func:`deadline_scope`."""
    return getattr(_LOCAL, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as the ambient deadline of the current thread.

    ``None`` is a no-op that *preserves* any outer scope — so a library call
    without an explicit deadline still honors its caller's budget — while a
    non-``None`` deadline shadows the outer one for the duration.
    """
    if deadline is None:
        yield active_deadline()
        return
    previous = getattr(_LOCAL, "deadline", None)
    _LOCAL.deadline = deadline
    try:
        yield deadline
    finally:
        _LOCAL.deadline = previous
