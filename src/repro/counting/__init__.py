"""Relevant-subproblem counting: decomposition cardinalities and the cost formula."""

from .decomposition import (
    full_decomposition_size,
    full_decomposition_size_enumerated,
    recursive_decomposition_size,
    recursive_decomposition_size_enumerated,
    relevant_subtree_counts,
    single_path_subforest_count,
    single_path_subforest_count_enumerated,
)
from .cost_formula import (
    count_subproblems,
    demaine_count,
    klein_count,
    optimal_cost_bruteforce,
    optimal_cost_restricted,
    rted_count,
    strategy_cost,
    strategy_object_cost,
    zhang_left_count,
    zhang_right_count,
)
from .cost_formula_numpy import (
    count_subproblems_fast,
    demaine_count_fast,
    klein_count_fast,
    rted_count_fast,
    zhang_left_count_fast,
    zhang_right_count_fast,
)

__all__ = [
    "full_decomposition_size",
    "full_decomposition_size_enumerated",
    "single_path_subforest_count",
    "single_path_subforest_count_enumerated",
    "recursive_decomposition_size",
    "recursive_decomposition_size_enumerated",
    "relevant_subtree_counts",
    "strategy_cost",
    "strategy_object_cost",
    "zhang_left_count",
    "zhang_right_count",
    "klein_count",
    "demaine_count",
    "rted_count",
    "optimal_cost_bruteforce",
    "optimal_cost_restricted",
    "count_subproblems",
    "count_subproblems_fast",
    "zhang_left_count_fast",
    "zhang_right_count_fast",
    "klein_count_fast",
    "demaine_count_fast",
    "rted_count_fast",
]
