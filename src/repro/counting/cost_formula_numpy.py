"""NumPy-accelerated relevant-subproblem counters.

The experiments of Figure 8 and Tables 1–2 evaluate the cost formula for
trees with hundreds to thousands of nodes; the pure-Python evaluators in
:mod:`repro.counting.cost_formula` become slow at that scale.  This module
provides counters with the same semantics (they are cross-checked against the
pure-Python versions in the test-suite) but vectorized over the nodes of the
right-hand tree:

* for the fixed strategies that only decompose the left-hand tree
  (Zhang-L, Zhang-R, Klein-H) the recurrence is embarrassingly column-parallel
  and fully vectorized;
* for Demaine-H and RTED the right-hand-side accumulations are an inherently
  sequential scan over the nodes of ``G``; those counters vectorize the
  left-hand-side terms and keep a tight per-row Python scan.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..exceptions import UnknownAlgorithmError
from ..trees.tree import HEAVY, LEFT, RIGHT, Tree


def _factors(tree: Tree) -> Dict[str, np.ndarray]:
    """Per-node factors of the cost formula as int64 arrays."""
    return {
        "size": np.asarray(tree.sizes, dtype=np.int64),
        "full": np.asarray(tree.full_decomposition_sizes(), dtype=np.int64),
        "left": np.asarray(tree.left_decomposition_sizes(), dtype=np.int64),
        "right": np.asarray(tree.right_decomposition_sizes(), dtype=np.int64),
    }


def _fixed_left_side_count(tree_f: Tree, tree_g: Tree, kind: str) -> int:
    """Count for a strategy that always picks the ``kind`` path of ``F_v``.

    ``cost(v, ·) = |F_v| * factor_G(·) + Σ_{F' ∈ F_v − γ_kind} cost(F'.root, ·)``
    computed bottom-up over ``v`` with the off-path sums accumulated
    incrementally (the same trick Algorithm 2 uses), vectorized over the
    columns (nodes of ``G``).
    """
    factors_g = _factors(tree_g)
    if kind == HEAVY:
        factor_g = factors_g["full"]
    elif kind == LEFT:
        factor_g = factors_g["left"]
    elif kind == RIGHT:
        factor_g = factors_g["right"]
    else:
        raise ValueError(f"unknown path kind {kind!r}")

    n_f, n_g = tree_f.n, tree_g.n
    sizes_f = tree_f.sizes
    parents_f = tree_f.parents

    off_path_sums = np.zeros((n_f, n_g), dtype=np.int64)
    cost_root_row: np.ndarray | None = None

    for v in range(n_f):
        cost_row = sizes_f[v] * factor_g + off_path_sums[v]
        parent = parents_f[v]
        if parent == -1:
            cost_root_row = cost_row
        else:
            if tree_f.on_parent_path(v, kind):
                off_path_sums[parent] += off_path_sums[v]
            else:
                off_path_sums[parent] += cost_row

    assert cost_root_row is not None
    return int(cost_root_row[n_g - 1])


def zhang_left_count_fast(tree_f: Tree, tree_g: Tree) -> int:
    """Vectorized relevant-subproblem count of Zhang-L."""
    return _fixed_left_side_count(tree_f, tree_g, LEFT)


def zhang_right_count_fast(tree_f: Tree, tree_g: Tree) -> int:
    """Vectorized relevant-subproblem count of Zhang-R."""
    return _fixed_left_side_count(tree_f, tree_g, RIGHT)


def klein_count_fast(tree_f: Tree, tree_g: Tree) -> int:
    """Vectorized relevant-subproblem count of Klein-H."""
    return _fixed_left_side_count(tree_f, tree_g, HEAVY)


def demaine_count_fast(tree_f: Tree, tree_g: Tree) -> int:
    """Relevant-subproblem count of Demaine-H (heavy path in the larger tree)."""
    n_f, n_g = tree_f.n, tree_g.n
    factors_f = _factors(tree_f)
    factors_g = _factors(tree_g)
    sizes_f = tree_f.sizes
    sizes_g = tree_g.sizes
    parents_f = tree_f.parents
    parents_g = list(tree_g.parents)
    full_f = tree_f.full_decomposition_sizes()
    full_g_vec = factors_g["full"]
    heavy_child_flag_g = [tree_g.on_parent_path(w, HEAVY) for w in range(n_g)]

    heavy_sums_f = np.zeros((n_f, n_g), dtype=np.int64)
    root_cost = 0

    for v in range(n_f):
        size_v = sizes_f[v]
        full_v = full_f[v]
        f_term_row = size_v * full_g_vec + heavy_sums_f[v]
        f_term_list = f_term_row.tolist()

        heavy_sums_g: List[int] = [0] * n_g
        cost_row: List[int] = [0] * n_g
        for w in range(n_g):
            if size_v >= sizes_g[w]:
                cost = f_term_list[w]
            else:
                cost = sizes_g[w] * full_v + heavy_sums_g[w]
            cost_row[w] = cost
            parent_w = parents_g[w]
            if parent_w != -1:
                heavy_sums_g[parent_w] += heavy_sums_g[w] if heavy_child_flag_g[w] else cost

        parent = parents_f[v]
        if parent == -1:
            root_cost = cost_row[n_g - 1]
        else:
            if tree_f.on_parent_path(v, HEAVY):
                heavy_sums_f[parent] += heavy_sums_f[v]
            else:
                heavy_sums_f[parent] += np.asarray(cost_row, dtype=np.int64)

    return int(root_cost)


def rted_count_fast(tree_f: Tree, tree_g: Tree) -> int:
    """Relevant-subproblem count of the optimal LRH strategy (Algorithm 2).

    This is Algorithm 2 with the left-hand-side candidate terms vectorized per
    row; it returns only the optimal cost (not the strategy matrix), which is
    all the counting experiments need.
    """
    n_f, n_g = tree_f.n, tree_g.n
    sizes_f = tree_f.sizes
    sizes_g = tree_g.sizes
    parents_f = tree_f.parents
    parents_g = list(tree_g.parents)

    full_f = tree_f.full_decomposition_sizes()
    left_f = tree_f.left_decomposition_sizes()
    right_f = tree_f.right_decomposition_sizes()
    factors_g = _factors(tree_g)
    full_g_vec = factors_g["full"]
    left_g_vec = factors_g["left"]
    right_g_vec = factors_g["right"]

    on_left_f = [tree_f.on_parent_path(v, LEFT) for v in range(n_f)]
    on_right_f = [tree_f.on_parent_path(v, RIGHT) for v in range(n_f)]
    on_heavy_f = [tree_f.on_parent_path(v, HEAVY) for v in range(n_f)]
    on_left_g = [tree_g.on_parent_path(w, LEFT) for w in range(n_g)]
    on_right_g = [tree_g.on_parent_path(w, RIGHT) for w in range(n_g)]
    on_heavy_g = [tree_g.on_parent_path(w, HEAVY) for w in range(n_g)]

    left_sums_f = np.zeros((n_f, n_g), dtype=np.int64)
    right_sums_f = np.zeros((n_f, n_g), dtype=np.int64)
    heavy_sums_f = np.zeros((n_f, n_g), dtype=np.int64)

    root_cost = 0

    for v in range(n_f):
        size_v = sizes_f[v]
        full_v = full_f[v]
        left_v = left_f[v]
        right_v = right_f[v]

        heavy_f_term = (size_v * full_g_vec + heavy_sums_f[v]).tolist()
        left_f_term = (size_v * left_g_vec + left_sums_f[v]).tolist()
        right_f_term = (size_v * right_g_vec + right_sums_f[v]).tolist()

        left_sums_g: List[int] = [0] * n_g
        right_sums_g: List[int] = [0] * n_g
        heavy_sums_g: List[int] = [0] * n_g
        cost_row: List[int] = [0] * n_g

        for w in range(n_g):
            size_w = sizes_g[w]
            best = heavy_f_term[w]
            candidate = size_w * full_v + heavy_sums_g[w]
            if candidate < best:
                best = candidate
            if left_f_term[w] < best:
                best = left_f_term[w]
            candidate = size_w * left_v + left_sums_g[w]
            if candidate < best:
                best = candidate
            if right_f_term[w] < best:
                best = right_f_term[w]
            candidate = size_w * right_v + right_sums_g[w]
            if candidate < best:
                best = candidate
            cost_row[w] = best

            parent_w = parents_g[w]
            if parent_w != -1:
                left_sums_g[parent_w] += left_sums_g[w] if on_left_g[w] else best
                right_sums_g[parent_w] += right_sums_g[w] if on_right_g[w] else best
                heavy_sums_g[parent_w] += heavy_sums_g[w] if on_heavy_g[w] else best

        parent = parents_f[v]
        if parent == -1:
            root_cost = cost_row[n_g - 1]
        else:
            cost_vec = np.asarray(cost_row, dtype=np.int64)
            left_sums_f[parent] += left_sums_f[v] if on_left_f[v] else cost_vec
            right_sums_f[parent] += right_sums_f[v] if on_right_f[v] else cost_vec
            heavy_sums_f[parent] += heavy_sums_f[v] if on_heavy_f[v] else cost_vec

    return int(root_cost)


_FAST_COUNTERS: Dict[str, Callable[[Tree, Tree], int]] = {
    "zhang-l": zhang_left_count_fast,
    "zhang-r": zhang_right_count_fast,
    "klein-h": klein_count_fast,
    "demaine-h": demaine_count_fast,
    "rted": rted_count_fast,
}


def count_subproblems_fast(algorithm: str, tree_f: Tree, tree_g: Tree) -> int:
    """Vectorized relevant-subproblem count of the named algorithm's strategy."""
    key = algorithm.strip().lower()
    counter = _FAST_COUNTERS.get(key)
    if counter is None:
        raise UnknownAlgorithmError(
            f"no fast subproblem counter for {algorithm!r}; "
            f"available: {', '.join(sorted(_FAST_COUNTERS))}"
        )
    return counter(tree_f, tree_g)
