"""The cost formula (Figure 5): relevant-subproblem counts of path strategies.

Given a pair of trees and a path strategy, the number of relevant subproblems
GTED evaluates is

``cost(F_v, G_w) = <single-path-function cost> + Σ cost over relevant subtrees``

where the single-path-function cost is ``|F_v|·|A(G_w)|`` for heavy paths and
``|F_v|·|F(G_w, Γ_L/R)|`` for left/right paths (Lemma 4), and the sum ranges
over ``F_v − γ`` (or ``G_w − γ`` when the path lies in ``G``).

This module implements:

* :func:`strategy_cost` — the cost of an arbitrary strategy (memoized
  recursion over subtree pairs; this is the *baseline algorithm* of
  Section 6.1 when used with the minimizing chooser);
* :func:`optimal_cost_bruteforce` — the minimum over all LRH strategies,
  evaluated directly from the cost formula (used to validate Algorithm 2);
* :func:`count_subproblems` — per-algorithm counts for the five algorithms
  compared in the paper (the quantity plotted in Figure 8 and reported in
  Tables 1 and 2).

For large trees prefer the vectorized counters in
:mod:`repro.counting.cost_formula_numpy`.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional, Tuple

from ..algorithms.optimal_strategy import optimal_strategy_cost
from ..algorithms.strategies import SIDE_F, SIDE_G, PathChoice, Strategy
from ..exceptions import UnknownAlgorithmError
from ..trees.tree import HEAVY, LEFT, RIGHT, Tree

#: Chooser signature: (v, w) -> PathChoice.
Chooser = Callable[[int, int], PathChoice]


def _single_path_cost(
    tree_f: Tree, tree_g: Tree, v: int, w: int, choice: PathChoice
) -> int:
    """Cost of one single-path-function invocation (Lemma 4)."""
    if choice.side == SIDE_F:
        size = tree_f.sizes[v]
        if choice.kind == HEAVY:
            return size * tree_g.full_decomposition_sizes()[w]
        if choice.kind == LEFT:
            return size * tree_g.left_decomposition_sizes()[w]
        return size * tree_g.right_decomposition_sizes()[w]
    size = tree_g.sizes[w]
    if choice.kind == HEAVY:
        return size * tree_f.full_decomposition_sizes()[v]
    if choice.kind == LEFT:
        return size * tree_f.left_decomposition_sizes()[v]
    return size * tree_f.right_decomposition_sizes()[v]


def strategy_cost(tree_f: Tree, tree_g: Tree, chooser: Chooser) -> int:
    """Number of relevant subproblems induced by the strategy ``chooser``.

    ``chooser(v, w)`` must return the :class:`PathChoice` the strategy assigns
    to the pair of subtrees rooted at ``(v, w)``.
    """
    memo: Dict[Tuple[int, int], int] = {}

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000 + 10 * (tree_f.n + tree_g.n)))
    try:
        return _strategy_cost_rec(tree_f, tree_g, tree_f.root, tree_g.root, chooser, memo)
    finally:
        sys.setrecursionlimit(old_limit)


def _strategy_cost_rec(
    tree_f: Tree,
    tree_g: Tree,
    v: int,
    w: int,
    chooser: Chooser,
    memo: Dict[Tuple[int, int], int],
) -> int:
    key = (v, w)
    cached = memo.get(key)
    if cached is not None:
        return cached

    choice = chooser(v, w)
    total = _single_path_cost(tree_f, tree_g, v, w, choice)
    if choice.side == SIDE_F:
        for child_root in tree_f.relevant_subtrees(v, choice.kind):
            total += _strategy_cost_rec(tree_f, tree_g, child_root, w, chooser, memo)
    else:
        for child_root in tree_g.relevant_subtrees(w, choice.kind):
            total += _strategy_cost_rec(tree_f, tree_g, v, child_root, chooser, memo)

    memo[key] = total
    return total


def strategy_object_cost(tree_f: Tree, tree_g: Tree, strategy: Strategy) -> int:
    """:func:`strategy_cost` for a :class:`~repro.algorithms.strategies.Strategy`."""
    return strategy_cost(tree_f, tree_g, lambda v, w: strategy.choose(tree_f, tree_g, v, w))


# --------------------------------------------------------------------------- #
# Fixed strategies of the published algorithms
# --------------------------------------------------------------------------- #
def zhang_left_count(tree_f: Tree, tree_g: Tree) -> int:
    """Relevant subproblems of Zhang-L (left paths in the left-hand tree)."""
    choice = PathChoice(SIDE_F, LEFT)
    return strategy_cost(tree_f, tree_g, lambda v, w: choice)


def zhang_right_count(tree_f: Tree, tree_g: Tree) -> int:
    """Relevant subproblems of Zhang-R (right paths in the left-hand tree)."""
    choice = PathChoice(SIDE_F, RIGHT)
    return strategy_cost(tree_f, tree_g, lambda v, w: choice)


def klein_count(tree_f: Tree, tree_g: Tree) -> int:
    """Relevant subproblems of Klein-H (heavy paths in the left-hand tree)."""
    choice = PathChoice(SIDE_F, HEAVY)
    return strategy_cost(tree_f, tree_g, lambda v, w: choice)


def demaine_count(tree_f: Tree, tree_g: Tree) -> int:
    """Relevant subproblems of Demaine-H (heavy paths in the larger subtree)."""
    heavy_f = PathChoice(SIDE_F, HEAVY)
    heavy_g = PathChoice(SIDE_G, HEAVY)

    def chooser(v: int, w: int) -> PathChoice:
        return heavy_f if tree_f.sizes[v] >= tree_g.sizes[w] else heavy_g

    return strategy_cost(tree_f, tree_g, chooser)


def rted_count(tree_f: Tree, tree_g: Tree) -> int:
    """Relevant subproblems of RTED (the optimal LRH strategy, Algorithm 2)."""
    return optimal_strategy_cost(tree_f, tree_g)


# --------------------------------------------------------------------------- #
# Brute-force optimum (baseline algorithm of Section 6.1)
# --------------------------------------------------------------------------- #
_ALL_CHOICES = (
    PathChoice(SIDE_F, HEAVY),
    PathChoice(SIDE_G, HEAVY),
    PathChoice(SIDE_F, LEFT),
    PathChoice(SIDE_G, LEFT),
    PathChoice(SIDE_F, RIGHT),
    PathChoice(SIDE_G, RIGHT),
)


def optimal_cost_bruteforce(tree_f: Tree, tree_g: Tree) -> int:
    """Cost of the optimal LRH strategy via direct evaluation of Figure 5.

    This is the memoized "baseline algorithm" of Section 6.1: ``O(n^3)`` time,
    ``O(n^2)`` space.  It must produce exactly the same value as Algorithm 2
    (:func:`rted_count`); the test-suite asserts this equivalence.
    """
    return optimal_cost_restricted(tree_f, tree_g, _ALL_CHOICES)


def optimal_cost_restricted(
    tree_f: Tree, tree_g: Tree, choices: Tuple[PathChoice, ...]
) -> int:
    """Cost of the optimal strategy restricted to the given path choices.

    Used by the strategy-space ablation: e.g. restricting to
    ``(PathChoice(F, LEFT), PathChoice(F, RIGHT))`` measures the best an
    LR-only single-tree strategy could do, and comparing it with the full LRH
    optimum quantifies the benefit of heavy paths and of decomposing both
    trees.
    """
    if not choices:
        raise ValueError("at least one path choice is required")
    memo: Dict[Tuple[int, int], int] = {}

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000 + 10 * (tree_f.n + tree_g.n)))
    try:
        return _optimal_cost_rec(tree_f, tree_g, tree_f.root, tree_g.root, memo, tuple(choices))
    finally:
        sys.setrecursionlimit(old_limit)


def _optimal_cost_rec(
    tree_f: Tree,
    tree_g: Tree,
    v: int,
    w: int,
    memo: Dict[Tuple[int, int], int],
    choices: Tuple[PathChoice, ...] = _ALL_CHOICES,
) -> int:
    key = (v, w)
    cached = memo.get(key)
    if cached is not None:
        return cached

    best: Optional[int] = None
    for choice in choices:
        total = _single_path_cost(tree_f, tree_g, v, w, choice)
        if choice.side == SIDE_F:
            for child_root in tree_f.relevant_subtrees(v, choice.kind):
                total += _optimal_cost_rec(tree_f, tree_g, child_root, w, memo, choices)
        else:
            for child_root in tree_g.relevant_subtrees(w, choice.kind):
                total += _optimal_cost_rec(tree_f, tree_g, v, child_root, memo, choices)
        if best is None or total < best:
            best = total

    memo[key] = best
    return best


# --------------------------------------------------------------------------- #
# Per-algorithm dispatch (the quantity of Figure 8 / Tables 1-2)
# --------------------------------------------------------------------------- #
_COUNTERS: Dict[str, Callable[[Tree, Tree], int]] = {
    "zhang-l": zhang_left_count,
    "zhang-r": zhang_right_count,
    "klein-h": klein_count,
    "demaine-h": demaine_count,
    "rted": rted_count,
}


def count_subproblems(algorithm: str, tree_f: Tree, tree_g: Tree) -> int:
    """Relevant-subproblem count of the named algorithm's strategy."""
    key = algorithm.strip().lower()
    counter = _COUNTERS.get(key)
    if counter is None:
        raise UnknownAlgorithmError(
            f"no subproblem counter for {algorithm!r}; available: {', '.join(sorted(_COUNTERS))}"
        )
    return counter(tree_f, tree_g)
