"""Decomposition cardinalities (Lemmas 1–3) and enumeration utilities.

The cost formula of the paper is built from three per-subtree quantities:

* ``|A(F_v)|`` — the size of the full decomposition (Lemma 1);
* ``|F(F_v, γ)| = |F_v|`` — the number of relevant subforests for a single
  root-leaf path (Lemma 2);
* ``|F(F_v, Γ_L)|`` / ``|F(F_v, Γ_R)|`` — the number of relevant subforests of
  the recursive left / right path decomposition (Lemma 3).

The closed forms are implemented on :class:`~repro.trees.tree.Tree`; this
module re-exports them under experiment-friendly names and provides the
*enumerating* counterparts (explicitly materializing the decompositions) that
the test-suite uses to validate the closed forms.
"""

from __future__ import annotations

from typing import Dict, List

from ..trees.forest import (
    enumerate_full_decomposition,
    enumerate_path_decomposition,
    enumerate_recursive_path_decomposition,
)
from ..trees.tree import HEAVY, LEFT, RIGHT, Tree


def full_decomposition_size(tree: Tree, v: int | None = None) -> int:
    """``|A(F_v)|`` by the closed form of Lemma 1 (default: whole tree)."""
    if v is None:
        v = tree.root
    return tree.full_decomposition_sizes()[v]


def full_decomposition_size_enumerated(tree: Tree, v: int | None = None) -> int:
    """``|A(F_v)|`` by explicit enumeration of Definition 1 (tests only)."""
    return len(enumerate_full_decomposition(tree, v))


def single_path_subforest_count(tree: Tree, v: int, kind: str) -> int:
    """``|F(F_v, γ_kind(F_v))|``; equals ``|F_v|`` by Lemma 2."""
    return tree.sizes[v]


def single_path_subforest_count_enumerated(tree: Tree, v: int, kind: str) -> int:
    """``|F(F_v, γ_kind(F_v))|`` by explicit enumeration of Definition 3."""
    return len(enumerate_path_decomposition(tree, v, kind))


def recursive_decomposition_size(tree: Tree, kind: str, v: int | None = None) -> int:
    """``|F(F_v, Γ_kind)|`` by the closed form of Lemma 3 (left / right only)."""
    if v is None:
        v = tree.root
    if kind == LEFT:
        return tree.left_decomposition_sizes()[v]
    if kind == RIGHT:
        return tree.right_decomposition_sizes()[v]
    if kind == HEAVY:
        # The heavy decomposition size is well defined but is not needed by
        # the cost formula (heavy paths use the full decomposition); compute
        # it with the generic recurrence for completeness.
        return _heavy_decomposition_sizes(tree)[v]
    raise ValueError(f"unknown path kind {kind!r}")


def recursive_decomposition_size_enumerated(tree: Tree, kind: str, v: int | None = None) -> int:
    """``|F(F_v, Γ_kind)|`` by explicit enumeration (tests only)."""
    if v is None:
        v = tree.root
    return len(enumerate_recursive_path_decomposition(tree, v, kind))


def _heavy_decomposition_sizes(tree: Tree) -> List[int]:
    off = [0] * tree.n
    result = [0] * tree.n
    for v in range(tree.n):
        total = 0
        path_child = tree.path_child(v, HEAVY)
        for c in tree.children[v]:
            total += off[c]
            if c != path_child:
                total += tree.sizes[c]
        off[v] = total
        result[v] = tree.sizes[v] + total
    return result


def relevant_subtree_counts(tree: Tree) -> Dict[str, List[int]]:
    """``|F_v − γ_kind(F_v)|`` for every node and every path kind.

    The number of relevant subtrees per subtree and path, used by the
    baseline strategy-cost analysis (Theorem 2) and by the ablation
    experiments.
    """
    counts = {LEFT: [0] * tree.n, RIGHT: [0] * tree.n, HEAVY: [0] * tree.n}
    for kind in (LEFT, RIGHT, HEAVY):
        for v in range(tree.n):
            counts[kind][v] = len(tree.relevant_subtrees(v, kind))
    return counts
