#!/usr/bin/env python3
"""Similarity join over phylogenetic trees (the TreeFam scenario).

The paper's Table 1 / Table 2 experiments motivate RTED with joins over tree
collections whose shapes vary — phylogenies are a prime example (deep,
unbalanced, binary).  This example:

1. generates a TreeFam-like collection of phylogenies (Newick round-trip shows
   the trees are ordinary phylogenetic trees);
2. runs a threshold similarity self-join with RTED, with and without the
   cheap lower-bound filter;
3. shows why RTED is the right default by counting the relevant subproblems
   each fixed-strategy competitor would have needed on the joined pairs.
"""

import itertools

from repro.counting import count_subproblems_fast
from repro.datasets import generate_collection
from repro.io import to_newick
from repro.join import similarity_self_join


def main() -> None:
    collection = generate_collection("treefam", num_trees=8, rng=7, size_range=(25, 60))
    print(f"Generated {len(collection)} phylogenies, sizes: {[t.n for t in collection]}")
    print("First phylogeny in Newick notation:")
    print(" ", to_newick(collection[0])[:120], "...")
    print()

    threshold = 25.0
    plain = similarity_self_join(collection, threshold, algorithm="rted")
    filtered = similarity_self_join(
        collection, threshold, algorithm="rted", use_lower_bound_filter=True
    )

    print(f"Similarity self-join with threshold τ = {threshold}")
    print(
        f"  without filter: {len(plain.matches)} matches, "
        f"{plain.pairs_computed} exact computations, {plain.total_time:.2f}s"
    )
    print(
        f"  with filter:    {len(filtered.matches)} matches, "
        f"{filtered.pairs_computed} exact computations "
        f"({filtered.pairs_filtered} pairs pruned), {filtered.total_time:.2f}s"
    )
    print()

    print("Matched pairs (distance < τ):")
    for i, j, distance in sorted(plain.matches, key=lambda entry: entry[2]):
        print(f"  trees {i} and {j}: distance {distance}")
    print()

    # Why RTED: total relevant subproblems each strategy needs on this workload.
    pairs = list(itertools.combinations(range(len(collection)), 2))
    print("Relevant subproblems over the whole join workload (cost formula):")
    for algorithm in ["zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"]:
        total = sum(
            count_subproblems_fast(algorithm, collection[i], collection[j]) for i, j in pairs
        )
        print(f"  {algorithm:10s} {total:>12,}")


if __name__ == "__main__":
    main()
