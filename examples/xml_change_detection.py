#!/usr/bin/env python3
"""XML change detection: diff two versions of an XML document.

This is the paper's motivating database scenario — comparing versions of
hierarchical data (web archives, document databases, configuration files).
The example parses two revisions of a small product-catalog document, computes
an optimal edit mapping, and prints a human-readable change report.  It also
shows how a custom cost model changes what "minimal change" means: with
:class:`~repro.costs.PerLabelCostModel`, structural wrapper elements become
cheap to insert or delete, so the optimal script prefers re-wrapping over
renaming content.
"""

from repro import edit_mapping
from repro.algorithms import RTED
from repro.costs import PerLabelCostModel
from repro.io import xml_to_tree
from repro.visualize import render_mapping

CATALOG_V1 = """
<catalog>
  <product sku="p1">
    <name>Espresso machine</name>
    <price>199</price>
    <stock>12</stock>
  </product>
  <product sku="p2">
    <name>Grinder</name>
    <price>89</price>
  </product>
</catalog>
"""

CATALOG_V2 = """
<catalog>
  <product sku="p1">
    <name>Espresso machine</name>
    <price currency="EUR">189</price>
    <availability>
      <stock>7</stock>
      <warehouse>Milan</warehouse>
    </availability>
  </product>
  <product sku="p3">
    <name>Kettle</name>
    <price>39</price>
  </product>
</catalog>
"""


def main() -> None:
    # include_text=True keeps element text as leaf nodes, so value changes
    # (199 -> 189) are visible to the diff, not only structural changes.
    old = xml_to_tree(CATALOG_V1, include_text=True)
    new = xml_to_tree(CATALOG_V2, include_text=True)

    result = RTED().compute(old, new)
    print(f"Structural edit distance between the two revisions: {result.distance}")
    print(f"(computed from {result.subproblems} relevant subproblems)")
    print()

    mapping = edit_mapping(old, new)
    print("Change report (source tree annotated with edit operations):")
    print(render_mapping(old, new, mapping))
    print()

    # With a domain-aware cost model, adding/removing wrapper elements such as
    # <availability> is cheap, while touching product names stays expensive.
    wrapper_model = PerLabelCostModel(
        delete_costs={"availability": 0.1, "stock": 0.5},
        insert_costs={"availability": 0.1, "stock": 0.5},
        default_delete=1.0,
        default_insert=1.0,
        rename_cost=1.0,
    )
    weighted = RTED().compute(old, new, cost_model=wrapper_model)
    print(
        "Distance under the wrapper-aware cost model: "
        f"{weighted.distance} (unit-cost distance was {result.distance})"
    )


if __name__ == "__main__":
    main()
