#!/usr/bin/env python3
"""Robustness of RTED across tree shapes (a miniature of Figure 8 and Table 2).

For every synthetic shape of the paper (left branch, right branch, full
binary, zig-zag, mixed, random) this script counts the relevant subproblems of
the five algorithms and prints, per shape, who wins and how far RTED is from
the best and worst competitor.  It then repeats the comparison on a pair of
*different* shapes — the case where every fixed strategy degenerates and the
optimal strategy shines.
"""

from repro.counting import count_subproblems_fast
from repro.datasets import make_shape, random_tree
from repro.experiments.runner import format_count, format_table

ALGORITHMS = ["zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"]
SHAPES = ["left-branch", "right-branch", "full-binary", "zigzag", "mixed", "random"]
SIZE = 301


def tree_of(shape: str):
    if shape == "random":
        return random_tree(SIZE, rng=42)
    return make_shape(shape, SIZE)


def main() -> None:
    rows = []
    for shape in SHAPES:
        tree = tree_of(shape)
        counts = {name: count_subproblems_fast(name, tree, tree) for name in ALGORITHMS}
        competitors = {name: value for name, value in counts.items() if name != "rted"}
        best = min(competitors, key=competitors.get)
        worst = max(competitors, key=competitors.get)
        rows.append(
            [
                shape,
                *(format_count(counts[name]) for name in ALGORITHMS),
                best,
                f"{counts['rted'] / counts[best]:.2f}",
                f"{counts['rted'] / counts[worst]:.3f}",
            ]
        )

    headers = ["shape", *ALGORITHMS, "best competitor", "rted/best", "rted/worst"]
    print(f"Relevant subproblems on identical-tree pairs of {SIZE} nodes")
    print(format_table(headers, rows))
    print()

    # Pairs of different shapes: the situation of the similarity join (Table 1).
    tree_f = make_shape("left-branch", SIZE)
    tree_g = make_shape("right-branch", SIZE, label="b")
    counts = {name: count_subproblems_fast(name, tree_f, tree_g) for name in ALGORITHMS}
    print("Left-branch vs. right-branch pair (every fixed strategy degenerates):")
    for name in ALGORITHMS:
        marker = "  <-- robust" if name == "rted" else ""
        print(f"  {name:10s} {format_count(counts[name]):>10s}{marker}")


if __name__ == "__main__":
    main()
