#!/usr/bin/env python3
"""Quickstart: compute tree edit distances, mappings, and compare algorithms.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    compare_algorithms,
    compute,
    edit_script,
    parse_tree,
    tree_edit_distance,
)
from repro.visualize import render_tree


def main() -> None:
    # Trees can be written in bracket notation ({label{child}...}), Newick, or XML.
    original = parse_tree("{article{title}{authors{author}{author}}{year}}")
    revised = parse_tree("{article{title}{authors{author}}{venue}{year}}")

    print("Original document tree:")
    print(render_tree(original))
    print()
    print("Revised document tree:")
    print(render_tree(revised))
    print()

    # 1. The distance itself (RTED is the default algorithm).
    distance = tree_edit_distance(original, revised)
    print(f"Tree edit distance: {distance}")
    print()

    # 2. Full result with measurements (subproblems, strategy/overall time).
    result = compute(original, revised, algorithm="rted")
    print(
        f"RTED evaluated {result.subproblems} relevant subproblems "
        f"(strategy {result.strategy_time * 1000:.2f} ms, "
        f"total {result.total_time * 1000:.2f} ms)"
    )
    print()

    # 3. The optimal edit script explaining the distance.
    print("Optimal edit script:")
    for operation in edit_script(original, revised):
        if operation.op != "match":
            print(f"  - {operation}")
    print()

    # 4. Every algorithm of the paper computes the same distance, with a
    #    different amount of work.
    print("Algorithm comparison on this pair:")
    for name, algo_result in compare_algorithms(original, revised).items():
        print(
            f"  {name:10s}  distance={algo_result.distance:<4g}  "
            f"subproblems={algo_result.subproblems}"
        )
    print()

    # 5. Execution engines.  "spf" — the recommended default, and what
    #    "auto" resolves to for every GTED/RTED variant (rted, klein-h,
    #    demaine-h; zhang-l/r keep their dedicated Zhang–Shasha tables) —
    #    runs *every* strategy phase (left, right and heavy paths) through
    #    iterative, array-based single-path functions and, being
    #    recursion-free, handles arbitrarily deep trees without touching the
    #    interpreter recursion limit.  "recursive" is the reference oracle
    #    kept for cross-checking only.
    print("Engine comparison (rted):")
    for engine in ("spf", "recursive"):
        result = compute(original, revised, algorithm="rted", engine=engine)
        print(
            f"  engine={engine:9s}  distance={result.distance:<4g}  "
            f"time={result.total_time * 1000:.2f} ms"
        )

    # Deep trees are no problem for the iterative engine — even for RTED and
    # the heavy-path algorithms, which recursed (and needed a raised
    # recursion limit) before the spf engine existed.
    deep_bracket = "{a" * 2000 + "}" * 2000
    for algorithm in ("zhang-l", "klein-h", "rted"):
        deep_distance = tree_edit_distance(deep_bracket, original, algorithm=algorithm)
        print(f"2000-deep path tree vs document tree ({algorithm}): {deep_distance}")
    print()

    # 6. Bounded computation: when only "is the distance below τ?" matters
    #    (similarity search), pass cutoff=τ.  The exact distance comes back
    #    when it is below the cutoff (bit-identical to the unbounded run);
    #    otherwise the computation aborts as soon as d ≥ τ is proven and
    #    tree_edit_distance reports inf (compute returns a BoundedResult
    #    carrying the proving lower bound instead).
    unrelated = parse_tree("{www{x{y}}{z{z{z}}}}")
    print("Bounded computation (cutoff=3):")
    for other in (revised, unrelated):
        bounded = tree_edit_distance(original, other, cutoff=3.0)
        result = compute(original, other, cutoff=3.0)
        detail = (
            f"exact {result.distance}"
            if not result.bounded
            else f">= {result.cutoff:g} (lower bound {result.lower_bound:g}, "
            f"{'aborted early' if result.aborted else 'final check'})"
        )
        print(f"  vs {other.labels[other.root]!r:10s}: {bounded}  [{detail}]")


if __name__ == "__main__":
    main()
