#!/usr/bin/env python3
"""Quickstart: compute tree edit distances, mappings, and compare algorithms.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    compare_algorithms,
    compute,
    edit_script,
    parse_tree,
    tree_edit_distance,
)
from repro.visualize import render_tree


def main() -> None:
    # Trees can be written in bracket notation ({label{child}...}), Newick, or XML.
    original = parse_tree("{article{title}{authors{author}{author}}{year}}")
    revised = parse_tree("{article{title}{authors{author}}{venue}{year}}")

    print("Original document tree:")
    print(render_tree(original))
    print()
    print("Revised document tree:")
    print(render_tree(revised))
    print()

    # 1. The distance itself (RTED is the default algorithm).
    distance = tree_edit_distance(original, revised)
    print(f"Tree edit distance: {distance}")
    print()

    # 2. Full result with measurements (subproblems, strategy/overall time).
    result = compute(original, revised, algorithm="rted")
    print(
        f"RTED evaluated {result.subproblems} relevant subproblems "
        f"(strategy {result.strategy_time * 1000:.2f} ms, "
        f"total {result.total_time * 1000:.2f} ms)"
    )
    print()

    # 3. The optimal edit script explaining the distance.
    print("Optimal edit script:")
    for operation in edit_script(original, revised):
        if operation.op != "match":
            print(f"  - {operation}")
    print()

    # 4. Every algorithm of the paper computes the same distance, with a
    #    different amount of work.
    print("Algorithm comparison on this pair:")
    for name, algo_result in compare_algorithms(original, revised).items():
        print(
            f"  {name:10s}  distance={algo_result.distance:<4g}  "
            f"subproblems={algo_result.subproblems}"
        )
    print()

    # 5. The same algorithm can run on different execution engines.  "spf"
    #    runs left/right strategy phases through iterative, array-based
    #    single-path functions: fastest for zhang-l/zhang-r and most RTED
    #    strategies, and recursion-free, so arbitrarily deep trees work.
    #    "recursive" is the reference engine, preferred for heavy-dominated
    #    strategies (klein-h, demaine-h).  "auto" (default) keeps each
    #    algorithm's historical implementation.
    print("Engine comparison (zhang-l):")
    for engine in ("auto", "spf"):
        result = compute(original, revised, algorithm="zhang-l", engine=engine)
        print(
            f"  engine={engine:5s}  distance={result.distance:<4g}  "
            f"time={result.total_time * 1000:.2f} ms"
        )

    deep_bracket = "{a" * 2000 + "}" * 2000
    deep_distance = tree_edit_distance(
        deep_bracket, original, algorithm="zhang-l", engine="spf"
    )
    print(f"2000-deep path tree vs document tree (engine='spf'): {deep_distance}")


if __name__ == "__main__":
    main()
